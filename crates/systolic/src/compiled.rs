//! Compiled static-schedule execution backend.
//!
//! The interpreted engines ([`crate::clocked::run_clocked`] and
//! [`crate::mapped::simulate_mapped`]) address every index point through
//! `HashMap<IVec, _>` lookups and clone `IVec` keys per token. For a *static*
//! schedule all of that is knowable ahead of time, so this module compiles a
//! `(J, D, E)` algorithm, mapping `T = [S; Π]` and machine `P` **once** into
//! flat arrays over dense point slots and then executes over plain indices:
//!
//! * **Slot layout** — `BoxSet::rank` gives every index point a dense `u32`
//!   slot in lexicographic (`iter_points`) order; per-slot firing cycle,
//!   processor id and per-dependence-column producer slot live in flat `Vec`s.
//! * **CSR fire list** — slots sorted by cycle with per-cycle offsets, so
//!   each cycle is a contiguous `&[u32]` slice.
//! * **Arena token store** — one `Vec<Option<B>>` indexed by slot replaces
//!   the `HashMap<IVec, B>` outputs/produced-at maps.
//! * **Cycle-sliced parallelism** — when every exercised dependence column
//!   has `Π·d̄ > 0` (which mapping feasibility enforces), any two points that
//!   share a cycle are independent: a producer of either would need
//!   `Π·d̄ = 0`. Each cycle's slice is therefore executed rayon-parallel; the
//!   bookkeeping that the interpreted engine interleaves (violations,
//!   in-flight counts) stays sequential in slot order, so results are
//!   **bit-identical** — violations, `peak_in_flight` and all. Schedules with
//!   a non-positive column budget fall back to a sequential dense replay of
//!   the interpreted semantics.
//!
//! [`run_clocked_compiled`] and [`simulate_mapped_compiled`] are drop-in
//! counterparts of the interpreted entry points; [`SimBackend`] selects
//! between the two across the [`bitlevel-core`] design flow and benches.

use crate::batch::{BatchRun, FaultedBatchRun, LaneArena, LaneCellSemantics, LaneView};
use crate::clocked::{ClockedRun, ClockedViolation, SyncCellSemantics};
use crate::fault::{FaultInjector, NoFaults, TransferFault};
use crate::mapped::MappedRunReport;
use crate::trace::{NullSink, TraceEvent, TraceSink};
use bitlevel_ir::AlgorithmTriplet;
use bitlevel_linalg::IVec;
use bitlevel_mapping::{Interconnect, MappingMatrix, Routing};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Which simulation engine executes a mapped algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SimBackend {
    /// The HashMap-based reference engines (`run_clocked`, `simulate_mapped`).
    Interpreted,
    /// The compile-once dense-slot engine of [`crate::compiled`] (default).
    #[default]
    Compiled,
    /// The lane-packed batch engine: up to 64 independent problem instances
    /// per [`CompiledSchedule::execute_batch`] walk, chunked rayon-parallel
    /// beyond one word. `width` is the lanes-per-word target (clamped to
    /// `1..=64`); timing-only evaluations are value-independent and behave
    /// exactly like [`SimBackend::Compiled`].
    CompiledBatch {
        /// Lanes packed per machine word (clamped to `1..=64`).
        width: usize,
    },
    /// The LSGP-partitioned engine of [`crate::partition`]: the virtual PE
    /// array is clustered into at most `workers` shards, each owned by one
    /// physical worker, with a barrier per cycle-slice. Bit-identical to
    /// [`SimBackend::Compiled`]; designs whose schedules are not causal
    /// fall back to the compiled engine with a recorded reason.
    Partitioned {
        /// Physical worker (shard) budget; must be at least 1.
        workers: usize,
    },
}

/// Why an algorithm cannot be compiled into the dense-slot representation.
///
/// These inputs are perfectly valid for the interpreted engines —
/// [`CompiledSchedule::try_compile`] lets callers (the `DesignFlow`
/// pipeline, sweeps) fall back instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The per-slot consume/launch bitmasks hold at most 64 columns.
    TooManyColumns {
        /// Number of dependence columns in the algorithm.
        m: usize,
    },
    /// `|J|` exceeds the dense `u32` slot space.
    IndexSetTooLarge {
        /// The offending cardinality.
        cardinality: u128,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TooManyColumns { m } => {
                write!(
                    f,
                    "compiled backend supports at most 64 dependence columns, got {m}"
                )
            }
            CompileError::IndexSetTooLarge { cardinality } => {
                write!(
                    f,
                    "index set too large for dense u32 slots: |J| = {cardinality}"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Why a [`SimBackend`] configuration is rejected by
/// [`SimBackend::validate`] before any work is scheduled on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendConfigError {
    /// `CompiledBatch { width: 0 }` — zero lanes per word packs nothing.
    ZeroBatchWidth,
    /// `CompiledBatch { width }` beyond [`crate::batch::MAX_LANES`].
    BatchWidthTooLarge {
        /// The requested lanes-per-word.
        width: usize,
        /// The hard lane capacity of one machine word.
        max: usize,
    },
    /// `Partitioned { workers: 0 }` — an empty worker pool executes nothing.
    ZeroWorkers,
}

impl fmt::Display for BackendConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendConfigError::ZeroBatchWidth => {
                write!(
                    f,
                    "batch width 0 is invalid: a word must carry at least one lane"
                )
            }
            BackendConfigError::BatchWidthTooLarge { width, max } => {
                write!(
                    f,
                    "batch width {width} exceeds the {max}-lane capacity of one machine word"
                )
            }
            BackendConfigError::ZeroWorkers => {
                write!(
                    f,
                    "worker count 0 is invalid: the physical pool must hold at least one worker"
                )
            }
        }
    }
}

impl std::error::Error for BackendConfigError {}

impl SimBackend {
    /// Validates the backend configuration: `CompiledBatch` widths outside
    /// `1..=MAX_LANES` are rejected with a typed error instead of being
    /// silently clamped. Callers that prefer the historical clamping
    /// behaviour (the `DesignFlow` batch path) keep it, but now record a
    /// clamp trace event rather than adjusting silently.
    pub fn validate(&self) -> Result<(), BackendConfigError> {
        match *self {
            SimBackend::Interpreted | SimBackend::Compiled => Ok(()),
            SimBackend::CompiledBatch { width } => {
                if width == 0 {
                    Err(BackendConfigError::ZeroBatchWidth)
                } else if width > crate::batch::MAX_LANES {
                    Err(BackendConfigError::BatchWidthTooLarge {
                        width,
                        max: crate::batch::MAX_LANES,
                    })
                } else {
                    Ok(())
                }
            }
            SimBackend::Partitioned { workers } => {
                if workers == 0 {
                    Err(BackendConfigError::ZeroWorkers)
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Sentinel producer slot for boundary inputs (no in-set producer).
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// Below this many points per cycle the parallel executor stays sequential —
/// fork/join overhead would dominate the per-point work.
pub(crate) const PAR_THRESHOLD: usize = 64;

/// Reusable gather scratch (one per worker): the consumer's reconstructed
/// index point and its per-column input row. Hoisting these out of the
/// per-slot hot loop removes two heap allocations per fired point.
pub(crate) struct SlotScratch<B> {
    point: IVec,
    inputs: Vec<Option<B>>,
}

impl<B> Default for SlotScratch<B> {
    fn default() -> Self {
        SlotScratch {
            point: IVec(Vec::new()),
            inputs: Vec::new(),
        }
    }
}

/// A `(alg, T, ic)` triple compiled into flat dense-slot arrays.
///
/// Build once with [`CompiledSchedule::compile`], then run any number of
/// workloads through [`CompiledSchedule::execute`] (values) or read the
/// timing-only report from [`CompiledSchedule::mapped_report`].
///
/// Persistable: [`CompiledSchedule::to_bytes`]/[`CompiledSchedule::from_bytes`]
/// (see [`crate::persist`]) give a checksummed, versioned binary image used by
/// the on-disk compile cache; serde derives cover JSON transport where the
/// real serde crates are available.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompiledSchedule {
    /// Algorithm dimension `n`.
    pub(crate) n: usize,
    /// Number of dependence columns `m` (≤ 64 for the bitmasks).
    pub(crate) m: usize,
    /// `|J|` — number of index points / slots.
    pub(crate) n_points: usize,
    /// Flat point coordinates: slot `s` is `points[s·n .. (s+1)·n]`.
    pub(crate) points: Vec<i64>,
    /// Firing cycle `Π·q̄` per slot.
    pub(crate) cycle: Vec<i64>,
    /// Dense processor id per slot.
    pub(crate) proc: Vec<u32>,
    /// Processor coordinates `S·q̄` by dense id (for violation rendering).
    pub(crate) proc_coords: Vec<IVec>,
    /// `producers[s·m + i]`: slot of the producer along column `i`, or
    /// [`NO_SLOT`] when the dependence is inactive at `s` (boundary input).
    pub(crate) producers: Vec<u32>,
    /// Bit `i` set ⟺ column `i` is consumed (active) at this slot.
    pub(crate) consume_mask: Vec<u64>,
    /// Bit `i` set ⟺ a token launches from this slot along column `i`.
    pub(crate) launch_mask: Vec<u64>,
    /// Per-column hop count under the clocked-engine budget (`Π·d̄` clamped
    /// to ≥ 0), `None` when unroutable — mirrors `run_clocked`'s pre-route.
    pub(crate) clocked_hops: Vec<Option<i64>>,
    /// Per-column link usage of the clocked route (for trace emission).
    pub(crate) clocked_usage: Vec<Option<IVec>>,
    /// Per-column routing `(usage, buffers, hops)` under the mapped-sim
    /// convention (`None` when `Π·d̄ ≤ 0`) — mirrors `simulate_mapped`'s
    /// pre-route.
    pub(crate) mapped_routes: Vec<Option<(IVec, i64, i64)>>,
    /// Per-column schedule budget `Π·d̄`.
    pub(crate) budgets: Vec<i64>,
    /// Per-column count of exercised dependence instances.
    pub(crate) active_count: Vec<u64>,
    /// Distinct firing cycles, ascending.
    pub(crate) cycle_values: Vec<i64>,
    /// CSR offsets: cycle `cycle_values[k]` fires
    /// `fire_order[cycle_offsets[k] .. cycle_offsets[k+1]]`.
    pub(crate) cycle_offsets: Vec<usize>,
    /// Slots sorted by (cycle, slot) — the interpreted engine's firing order.
    pub(crate) fire_order: Vec<u32>,
    /// Number of interconnect primitives (columns of `P`).
    pub(crate) n_links: usize,
    /// Every exercised column has `Π·d̄ > 0`: same-cycle points are
    /// independent and each cycle slice may execute in parallel.
    pub(crate) causal: bool,
}

impl CompiledSchedule {
    /// Compiles the schedule: ranks every point to a dense slot, resolves
    /// producers, routes every dependence column once, and builds the
    /// CSR fire list.
    ///
    /// # Panics
    /// Panics on dimension mismatches, on more than 64 dependence columns,
    /// or if `|J|` exceeds the dense `u32` slot space — use
    /// [`CompiledSchedule::try_compile`] where the caller wants to fall back
    /// to the interpreted engines instead.
    pub fn compile(alg: &AlgorithmTriplet, t: &MappingMatrix, ic: &Interconnect) -> Self {
        match Self::try_compile(alg, t, ic) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Checked variant of [`CompiledSchedule::compile`]: rejects algorithms
    /// the dense-slot representation cannot hold (more than 64 dependence
    /// columns, `|J| ≥ 2³²`) **before** allocating anything, so callers can
    /// degrade to the interpreted engines.
    ///
    /// # Panics
    /// Still panics on mapping/algorithm dimension mismatches — those are
    /// caller bugs, not input-size limits.
    pub fn try_compile(
        alg: &AlgorithmTriplet,
        t: &MappingMatrix,
        ic: &Interconnect,
    ) -> Result<Self, CompileError> {
        assert_eq!(t.n(), alg.dim(), "mapping/algorithm dimension mismatch");
        let set = &alg.index_set;
        let n = alg.dim();
        let m = alg.deps.len();
        if m > 64 {
            return Err(CompileError::TooManyColumns { m });
        }
        let card = set.cardinality();
        if card >= NO_SLOT as u128 {
            return Err(CompileError::IndexSetTooLarge { cardinality: card });
        }
        let n_points = card as usize;

        let budgets: Vec<i64> = alg.deps.iter().map(|d| d.vector.dot(&t.schedule)).collect();
        // Same pre-routing conventions as the two interpreted engines.
        let clocked_routes: Vec<Option<Routing>> = alg
            .deps
            .iter()
            .zip(&budgets)
            .map(|(d, &b)| ic.route(&t.space.matvec(&d.vector), b.max(0)))
            .collect();
        let clocked_hops: Vec<Option<i64>> = clocked_routes
            .iter()
            .map(|r| r.as_ref().map(|r| r.hops))
            .collect();
        let clocked_usage: Vec<Option<IVec>> = clocked_routes
            .into_iter()
            .map(|r| r.map(|r| r.usage))
            .collect();
        let mapped_routes: Vec<Option<(IVec, i64, i64)>> = alg
            .deps
            .iter()
            .zip(&budgets)
            .map(|(d, &b)| {
                if b <= 0 {
                    return None;
                }
                ic.route(&t.space.matvec(&d.vector), b)
                    .map(|r| (r.usage, r.buffers, r.hops))
            })
            .collect();

        let mut points = Vec::with_capacity(n_points * n);
        let mut cycle = Vec::with_capacity(n_points);
        let mut proc = Vec::with_capacity(n_points);
        let mut proc_ids: HashMap<IVec, u32> = HashMap::new();
        let mut proc_coords: Vec<IVec> = Vec::new();
        let mut producers = vec![NO_SLOT; n_points * m];
        let mut consume_mask = vec![0u64; n_points];
        let mut launch_mask = vec![0u64; n_points];
        let mut active_count = vec![0u64; m];

        for (s, q) in set.iter_points().enumerate() {
            debug_assert_eq!(set.rank(&q), s, "rank disagrees with iter_points order");
            points.extend_from_slice(q.as_slice());
            cycle.push(t.time(&q));
            let place = t.place(&q);
            let id = match proc_ids.get(&place) {
                Some(&id) => id,
                None => {
                    let id = proc_coords.len() as u32;
                    proc_ids.insert(place.clone(), id);
                    proc_coords.push(place);
                    id
                }
            };
            proc.push(id);
            for (i, d) in alg.deps.iter().enumerate() {
                if d.active_at(&q, set) {
                    consume_mask[s] |= 1u64 << i;
                    active_count[i] += 1;
                    let src = set
                        .try_rank(&(&q - &d.vector))
                        .expect("active_at guarantees the source lies in J");
                    producers[s * m + i] = src as u32;
                }
                if d.active_at(&(&q + &d.vector), set) {
                    launch_mask[s] |= 1u64 << i;
                }
            }
        }

        // CSR fire list: stable sort by cycle keeps lexicographic slot order
        // within each cycle — exactly the interpreted engine's firing order.
        let mut fire_order: Vec<u32> = (0..n_points as u32).collect();
        fire_order.sort_by_key(|&s| cycle[s as usize]);
        let mut cycle_values: Vec<i64> = Vec::new();
        let mut cycle_offsets: Vec<usize> = Vec::new();
        for (k, &s) in fire_order.iter().enumerate() {
            let c = cycle[s as usize];
            if cycle_values.last() != Some(&c) {
                cycle_values.push(c);
                cycle_offsets.push(k);
            }
        }
        cycle_offsets.push(n_points);

        let causal = (0..m).all(|i| active_count[i] == 0 || budgets[i] > 0);

        Ok(CompiledSchedule {
            n,
            m,
            n_points,
            points,
            cycle,
            proc,
            proc_coords,
            producers,
            consume_mask,
            launch_mask,
            clocked_hops,
            clocked_usage,
            mapped_routes,
            budgets,
            active_count,
            cycle_values,
            cycle_offsets,
            fire_order,
            n_links: ic.count(),
            causal,
        })
    }

    /// Number of index points (= dense slots).
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// Number of distinct firing cycles.
    pub fn n_cycles(&self) -> usize {
        self.cycle_values.len()
    }

    /// Number of distinct processors.
    pub fn n_processors(&self) -> usize {
        self.proc_coords.len()
    }

    /// True iff every exercised dependence column has `Π·d̄ > 0`, i.e. the
    /// parallel per-cycle executor is applicable.
    pub fn is_causal(&self) -> bool {
        self.causal
    }

    /// Reconstructs the index point of slot `s`.
    pub(crate) fn point(&self, s: usize) -> IVec {
        debug_assert!(s < self.n_points, "slot {s} out of bounds");
        IVec(self.points[s * self.n..(s + 1) * self.n].to_vec())
    }

    /// Reconstructs the index point of slot `s` into a reused buffer.
    #[inline]
    fn point_into(&self, s: usize, out: &mut IVec) {
        debug_assert!(s < self.n_points, "slot {s} out of bounds");
        out.0.clear();
        out.0
            .extend_from_slice(&self.points[s * self.n..(s + 1) * self.n]);
    }

    /// Gathers the consumer's input row for slot `s` into the scratch buffer
    /// (point + per-column tokens) without allocating.
    #[inline]
    fn gather_slot<B: Clone>(&self, s: usize, arena: &[Option<B>], scratch: &mut SlotScratch<B>) {
        self.point_into(s, &mut scratch.point);
        scratch.inputs.clear();
        let mask = self.consume_mask[s];
        for i in 0..self.m {
            if mask & (1u64 << i) != 0 {
                let src = self.producers[s * self.m + i] as usize;
                debug_assert!(src < arena.len(), "producer slot {src} out of bounds");
                // In a causal run this is always `Some`; in the sequential
                // fallback a not-yet-fired producer reads as a boundary
                // input, exactly like the interpreted engine's map miss.
                scratch.inputs.push(arena[src].clone());
            } else {
                scratch.inputs.push(None);
            }
        }
    }

    /// Gathers inputs and computes one slot against the current arena.
    #[inline]
    pub(crate) fn compute_slot<S: SyncCellSemantics>(
        &self,
        semantics: &S,
        s: usize,
        arena: &[Option<S::Bundle>],
        scratch: &mut SlotScratch<S::Bundle>,
    ) -> S::Bundle {
        self.gather_slot(s, arena, scratch);
        semantics.compute(&scratch.point, &scratch.inputs)
    }

    /// Gathers inputs and computes one slot word-wide, all lanes at once.
    #[inline]
    pub(crate) fn compute_slot_lanes<L: LaneCellSemantics>(
        &self,
        lanes: &L,
        s: usize,
        arena: &[Option<L::Packed>],
        scratch: &mut SlotScratch<L::Packed>,
    ) -> L::Packed {
        self.gather_slot(s, arena, scratch);
        lanes.compute_lanes(&scratch.point, &scratch.inputs)
    }

    /// [`CompiledSchedule::compute_slot`] under a fault injector: transfer
    /// faults apply at gather (a drop reads as a boundary input, a duplicate
    /// re-reads the previous token of the edge class — unless the real token
    /// is missing, which dominates), output faults mutate the bundle before
    /// it settles into the arena. Fault *events* are reconstructed later in
    /// the bookkeeping phase; descriptions returned here are discarded.
    fn compute_slot_faulted<S: SyncCellSemantics, F: FaultInjector<S::Bundle>>(
        &self,
        semantics: &S,
        s: usize,
        arena: &[Option<S::Bundle>],
        faults: &F,
        scratch: &mut SlotScratch<S::Bundle>,
    ) -> S::Bundle {
        let c = self.cycle[s];
        self.point_into(s, &mut scratch.point);
        scratch.inputs.clear();
        let mask = self.consume_mask[s];
        for i in 0..self.m {
            if mask & (1u64 << i) == 0 {
                scratch.inputs.push(None);
                continue;
            }
            let src = self.producers[s * self.m + i] as usize;
            match faults.on_transfer(c, &scratch.point, i) {
                TransferFault::Drop => scratch.inputs.push(None),
                TransferFault::Duplicate if arena[src].is_some() => {
                    let stale = self.producers[src * self.m + i];
                    scratch.inputs.push(if stale == NO_SLOT {
                        None
                    } else {
                        arena[stale as usize].clone()
                    });
                }
                _ => scratch.inputs.push(arena[src].clone()),
            }
        }
        let mut bundle = semantics.compute(&scratch.point, &scratch.inputs);
        let _ = faults.on_output(
            c,
            &scratch.point,
            &self.proc_coords[self.proc[s] as usize],
            &mut bundle,
        );
        bundle
    }

    /// Executes the compiled schedule with value-carrying tokens, producing a
    /// [`ClockedRun`] bit-identical to [`crate::clocked::run_clocked`] —
    /// outputs, violations (same order), cycle count and `peak_in_flight`.
    pub fn execute<S: SyncCellSemantics>(&self, semantics: &S) -> ClockedRun<S::Bundle> {
        self.execute_traced(semantics, &mut NullSink)
    }

    /// [`CompiledSchedule::execute`] with a [`TraceSink`]. Events are
    /// reconstructed during the sequential bookkeeping phase — the rayon
    /// value slices stay untouched — and the emitted stream is **identical**
    /// to [`crate::clocked::run_clocked_traced`]'s on the same inputs. With
    /// [`NullSink`] the guards compile away and this *is* `execute`.
    pub fn execute_traced<S: SyncCellSemantics, K: TraceSink>(
        &self,
        semantics: &S,
        sink: &mut K,
    ) -> ClockedRun<S::Bundle> {
        self.execute_faulted(semantics, sink, &NoFaults)
    }

    /// [`CompiledSchedule::execute_traced`] with a [`FaultInjector`] — the
    /// compiled counterpart of [`crate::clocked::run_clocked_faulted`],
    /// bit-identical to it under the same injector. A live injector forces
    /// the sequential value path (faulted gathers must see arena mutations
    /// in the interpreted engine's order); [`NoFaults`] compiles every fault
    /// branch away, keeping the parallel path and making this *is*
    /// `execute_traced`.
    pub fn execute_faulted<S, K, F>(
        &self,
        semantics: &S,
        sink: &mut K,
        faults: &F,
    ) -> ClockedRun<S::Bundle>
    where
        S: SyncCellSemantics,
        K: TraceSink,
        F: FaultInjector<S::Bundle>,
    {
        self.emit_clocked_route_events(sink);
        let mut arena: Vec<Option<S::Bundle>> = vec![None; self.n_points];
        let mut violations = Vec::new();
        let mut in_flight = vec![0u64; self.m];
        let mut peak_in_flight = vec![0u64; self.m];
        // Per-cycle duplicate-fire scratch over dense processor ids.
        let mut fired = vec![false; self.proc_coords.len()];
        let mut scratch: SlotScratch<S::Bundle> = SlotScratch::default();
        let mut computed: Vec<(u32, S::Bundle)> = Vec::new();

        for k in 0..self.cycle_values.len() {
            let c = self.cycle_values[k];
            let slice = &self.fire_order[self.cycle_offsets[k]..self.cycle_offsets[k + 1]];

            // Value phase. In a causal schedule every producer fired in an
            // earlier cycle, so the slice's computes only read settled arena
            // entries and may run in parallel. Otherwise replay the
            // interpreted engine's sequential order (a same-cycle producer
            // earlier in slot order is then *visible*, later ones read as
            // boundary inputs — bit-identical to the HashMap engine).
            if F::ENABLED {
                // Faulted gathers must observe arena mutations in the
                // interpreted engine's sequential order.
                for &s in slice {
                    let bundle = self.compute_slot_faulted(
                        semantics,
                        s as usize,
                        &arena,
                        faults,
                        &mut scratch,
                    );
                    arena[s as usize] = Some(bundle);
                }
            } else if self.causal && slice.len() >= PAR_THRESHOLD {
                slice
                    .par_iter()
                    .map_init(SlotScratch::default, |sc, &s| {
                        (s, self.compute_slot(semantics, s as usize, &arena, sc))
                    })
                    .collect_into_vec(&mut computed);
                for (s, bundle) in computed.drain(..) {
                    arena[s as usize] = Some(bundle);
                }
            } else {
                for &s in slice {
                    let bundle = self.compute_slot(semantics, s as usize, &arena, &mut scratch);
                    arena[s as usize] = Some(bundle);
                }
            }

            self.cycle_bookkeeping(
                c,
                slice,
                &arena,
                sink,
                faults,
                &mut violations,
                &mut in_flight,
                &mut peak_in_flight,
                &mut fired,
            );
        }

        let cycles = match (self.cycle_values.first(), self.cycle_values.last()) {
            (Some(a), Some(b)) => b - a + 1,
            _ => 0,
        };
        let mut outputs: HashMap<IVec, S::Bundle> = HashMap::with_capacity(self.n_points);
        for (s, bundle) in arena.into_iter().enumerate() {
            outputs.insert(
                self.point(s),
                bundle.expect("every slot fires exactly once"),
            );
        }
        ClockedRun {
            cycles,
            outputs,
            violations,
            peak_in_flight,
        }
    }

    /// Emits the per-column route / unroutable prologue events shared by
    /// every traced walk (scalar, batch, partitioned). A no-op with
    /// [`NullSink`].
    pub(crate) fn emit_clocked_route_events<K: TraceSink>(&self, sink: &mut K) {
        if !K::ENABLED {
            return;
        }
        for (i, (hops, usage)) in self
            .clocked_hops
            .iter()
            .zip(&self.clocked_usage)
            .enumerate()
        {
            match (hops, usage) {
                (Some(h), Some(u)) => sink.record(TraceEvent::ColumnRoute {
                    column: i,
                    hops: *h,
                    usage: u.clone(),
                }),
                _ => sink.record(TraceEvent::ColumnUnroutable { column: i }),
            }
        }
    }

    /// The sequential per-cycle bookkeeping shared by every value-carrying
    /// walk — scalar ([`CompiledSchedule::execute_faulted`]) and batch
    /// ([`CompiledSchedule::execute_batch`]). The mutation sequence on
    /// violations / in-flight counters is exactly the interpreted engine's;
    /// it reads arena *presence*, never token values, so it is agnostic to
    /// whether tokens are scalar bundles or lane-packed words.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn cycle_bookkeeping<B, K, F>(
        &self,
        c: i64,
        slice: &[u32],
        arena: &[Option<B>],
        sink: &mut K,
        faults: &F,
        violations: &mut Vec<ClockedViolation>,
        in_flight: &mut [u64],
        peak_in_flight: &mut [u64],
        fired: &mut [bool],
    ) where
        B: Clone + std::fmt::Debug,
        K: TraceSink,
        F: FaultInjector<B>,
    {
        {
            for &s in slice {
                let s = s as usize;
                let id = self.proc[s] as usize;
                if K::ENABLED {
                    sink.record(TraceEvent::PointFired {
                        cycle: c,
                        point: self.point(s),
                        processor: self.proc_coords[id].clone(),
                    });
                }
                if fired[id] {
                    let v = ClockedViolation::ProcessorConflict {
                        processor: self.proc_coords[id].to_string(),
                        cycle: c,
                    };
                    if K::ENABLED {
                        sink.record(TraceEvent::Violation {
                            cycle: c,
                            description: v.to_string(),
                        });
                    }
                    violations.push(v);
                }
                fired[id] = true;

                let mask = self.consume_mask[s];
                for (i, fl) in in_flight.iter_mut().enumerate().take(self.m) {
                    if mask & (1u64 << i) == 0 {
                        continue;
                    }
                    let tf = if F::ENABLED {
                        faults.on_transfer(c, &self.point(s), i)
                    } else {
                        TransferFault::None
                    };
                    if tf == TransferFault::Drop {
                        if K::ENABLED {
                            sink.record(TraceEvent::FaultInjected {
                                cycle: c,
                                point: self.point(s),
                                processor: self.proc_coords[id].clone(),
                                column: Some(i),
                                kind: "dropped_transfer".into(),
                            });
                        }
                        continue;
                    }
                    let src = self.producers[s * self.m + i] as usize;
                    let src_time = self.cycle[src];
                    if src_time > c || (src_time == c && src > s) {
                        // The producer had not fired when the interpreted
                        // engine gathered here (later cycle, or same cycle
                        // but later in slot order): a missing token.
                        let v = ClockedViolation::MissingToken {
                            consumer: self.point(s).to_string(),
                            column: i,
                        };
                        if K::ENABLED {
                            sink.record(TraceEvent::Violation {
                                cycle: c,
                                description: v.to_string(),
                            });
                        }
                        violations.push(v);
                        continue;
                    }
                    if src_time >= c {
                        let v = ClockedViolation::CausalityOrder {
                            consumer: self.point(s).to_string(),
                            column: i,
                        };
                        if K::ENABLED {
                            sink.record(TraceEvent::Violation {
                                cycle: c,
                                description: v.to_string(),
                            });
                        }
                        violations.push(v);
                    }
                    match self.clocked_hops[i] {
                        Some(h) if h <= c - src_time => {}
                        Some(h) => {
                            let v = ClockedViolation::RouteTooSlow {
                                consumer: self.point(s).to_string(),
                                column: i,
                                hops: h,
                                budget: c - src_time,
                            };
                            if K::ENABLED {
                                sink.record(TraceEvent::Violation {
                                    cycle: c,
                                    description: v.to_string(),
                                });
                            }
                            violations.push(v);
                        }
                        None => {
                            let v = ClockedViolation::RouteTooSlow {
                                consumer: self.point(s).to_string(),
                                column: i,
                                hops: -1,
                                budget: c - src_time,
                            };
                            if K::ENABLED {
                                sink.record(TraceEvent::Violation {
                                    cycle: c,
                                    description: v.to_string(),
                                });
                            }
                            violations.push(v);
                        }
                    }
                    if K::ENABLED {
                        sink.record(TraceEvent::TokenConsumed {
                            cycle: c,
                            column: i,
                            at: self.point(s),
                            slack: c - src_time,
                        });
                    }
                    *fl = fl.saturating_sub(1);
                    if F::ENABLED && tf == TransferFault::Duplicate && K::ENABLED {
                        sink.record(TraceEvent::FaultInjected {
                            cycle: c,
                            point: self.point(s),
                            processor: self.proc_coords[id].clone(),
                            column: Some(i),
                            kind: "duplicated_transfer".into(),
                        });
                    }
                }
                if F::ENABLED && K::ENABLED {
                    // Re-derive the output-fault descriptions for event
                    // emission on a scratch clone: the injector contract
                    // makes them a pure function of (cycle, point,
                    // processor), so the arena value stays untouched.
                    let mut scratch = arena[s]
                        .clone()
                        .expect("slot fired in this cycle's value phase");
                    let q = self.point(s);
                    for kind in faults.on_output(c, &q, &self.proc_coords[id], &mut scratch) {
                        sink.record(TraceEvent::FaultInjected {
                            cycle: c,
                            point: q.clone(),
                            processor: self.proc_coords[id].clone(),
                            column: None,
                            kind,
                        });
                    }
                }
                let launches = self.launch_mask[s];
                for i in 0..self.m {
                    if launches & (1u64 << i) != 0 {
                        in_flight[i] += 1;
                        peak_in_flight[i] = peak_in_flight[i].max(in_flight[i]);
                        if K::ENABLED {
                            sink.record(TraceEvent::TokenLaunched {
                                cycle: c,
                                column: i,
                                from: self.point(s),
                            });
                            sink.record(TraceEvent::BufferOccupancy {
                                cycle: c,
                                column: i,
                                in_flight: in_flight[i],
                            });
                        }
                    }
                }
            }
            for &s in slice {
                fired[self.proc[s as usize] as usize] = false;
            }
        }
    }

    /// Executes the compiled schedule with **lane-packed** tokens: every
    /// signal slot holds one machine word whose bit `i` belongs to problem
    /// instance `i`, so one walk of the slot/CSR machinery simulates up to
    /// [`crate::batch::MAX_LANES`] independent instances at once.
    ///
    /// Violations, cycle count and `peak_in_flight` are *schedule*
    /// properties — independent of token values, hence identical in every
    /// lane — so the returned [`BatchRun`] carries them once for the whole
    /// batch; [`BatchRun::extract_lane_run`] rebuilds per-instance
    /// [`ClockedRun`]s bit-identical to a scalar
    /// [`CompiledSchedule::execute`] of that lane.
    pub fn execute_batch<L: LaneCellSemantics>(&self, lanes: &L) -> BatchRun<L::Packed> {
        self.execute_batch_traced(lanes, &mut NullSink)
    }

    /// [`CompiledSchedule::execute_batch`] with a [`TraceSink`] observing
    /// the (lane-shared) schedule walk: routes, fires, token movements and
    /// violations — the same stream as [`CompiledSchedule::execute_traced`],
    /// since none of those events depend on token values.
    pub fn execute_batch_traced<L, K>(&self, lanes: &L, sink: &mut K) -> BatchRun<L::Packed>
    where
        L: LaneCellSemantics,
        K: TraceSink,
    {
        self.emit_clocked_route_events(sink);
        let mut arena: LaneArena<L::Packed> = LaneArena::new(self.n_points);
        let mut violations = Vec::new();
        let mut in_flight = vec![0u64; self.m];
        let mut peak_in_flight = vec![0u64; self.m];
        let mut fired = vec![false; self.proc_coords.len()];
        let mut scratch: SlotScratch<L::Packed> = SlotScratch::default();
        let mut computed: Vec<(u32, L::Packed)> = Vec::new();

        for k in 0..self.cycle_values.len() {
            let c = self.cycle_values[k];
            let slice = &self.fire_order[self.cycle_offsets[k]..self.cycle_offsets[k + 1]];

            // Value phase, identical in structure to the scalar walk — the
            // per-slot compute just carries one word per signal instead of
            // one bit, so the schedule overhead is amortised over all lanes.
            if self.causal && slice.len() >= PAR_THRESHOLD {
                slice
                    .par_iter()
                    .map_init(SlotScratch::default, |sc, &s| {
                        (
                            s,
                            self.compute_slot_lanes(lanes, s as usize, arena.slots(), sc),
                        )
                    })
                    .collect_into_vec(&mut computed);
                for (s, packed) in computed.drain(..) {
                    arena.set(s as usize, packed);
                }
            } else {
                for &s in slice {
                    let packed =
                        self.compute_slot_lanes(lanes, s as usize, arena.slots(), &mut scratch);
                    arena.set(s as usize, packed);
                }
            }

            self.cycle_bookkeeping(
                c,
                slice,
                arena.slots(),
                sink,
                &NoFaults,
                &mut violations,
                &mut in_flight,
                &mut peak_in_flight,
                &mut fired,
            );
        }

        let cycles = match (self.cycle_values.first(), self.cycle_values.last()) {
            (Some(a), Some(b)) => b - a + 1,
            _ => 0,
        };
        let mut outputs: HashMap<IVec, L::Packed> = HashMap::with_capacity(self.n_points);
        for (s, packed) in arena.into_slots().into_iter().enumerate() {
            outputs.insert(
                self.point(s),
                packed.expect("every slot fires exactly once"),
            );
        }
        BatchRun {
            cycles,
            lanes: lanes.lanes(),
            outputs,
            violations,
            peak_in_flight,
        }
    }

    /// [`CompiledSchedule::execute_batch`] under a [`FaultInjector`] aimed at
    /// a single lane. Faults perturb token *values*, which would break the
    /// lane-uniformity the word-wide walk relies on — so the clean batch
    /// runs word-wide as usual, and only `fault_lane` is re-run through the
    /// scalar [`CompiledSchedule::execute_faulted`] via a [`LaneView`]. The
    /// result is bit-exact by construction: the other lanes never see the
    /// injector, and the faulted lane goes through exactly the engine the
    /// fault subsystem already verifies.
    pub fn execute_batch_faulted<L, K, F>(
        &self,
        lanes: &L,
        sink: &mut K,
        faults: &F,
        fault_lane: usize,
    ) -> FaultedBatchRun<L::Packed, L::Bundle>
    where
        L: LaneCellSemantics,
        K: TraceSink,
        F: FaultInjector<L::Bundle>,
    {
        assert!(
            fault_lane < lanes.lanes(),
            "fault lane {fault_lane} out of range for a {}-lane batch",
            lanes.lanes()
        );
        if !F::ENABLED {
            return FaultedBatchRun {
                batch: self.execute_batch_traced(lanes, sink),
                fault_lane,
                faulted: None,
            };
        }
        // The sink rides with the faulted lane's replay: that is where the
        // FaultInjected events live, and the schedule-walk events it emits
        // are identical to the clean batch walk's.
        let batch = self.execute_batch(lanes);
        let view = LaneView::new(lanes, fault_lane);
        let faulted = self.execute_faulted(&view, sink, faults);
        FaultedBatchRun {
            batch,
            fault_lane,
            faulted: Some(faulted),
        }
    }

    /// Runs several lane-packed chunks — e.g. a batch of more than 64
    /// instances split into ≤ 64-lane words — rayon-parallel across chunks.
    /// Each chunk's walk is itself internally parallel-safe (the per-cycle
    /// value slices), so this composes batch-level and cycle-slice
    /// parallelism.
    pub fn execute_batch_chunks<L: LaneCellSemantics>(
        &self,
        chunks: &[L],
    ) -> Vec<BatchRun<L::Packed>> {
        if chunks.len() > 1 {
            chunks.par_iter().map(|c| self.execute_batch(c)).collect()
        } else {
            chunks.iter().map(|c| self.execute_batch(c)).collect()
        }
    }

    /// The timing-structure report over the dense slots — same numbers as
    /// [`crate::mapped::simulate_mapped`], without re-walking `HashMap`s:
    /// conflicts from per-cycle processor-id scans, causality and traffic
    /// from the per-column routes and active-instance counts.
    pub fn mapped_report(&self) -> MappedRunReport {
        self.mapped_report_traced(&mut NullSink)
    }

    /// [`CompiledSchedule::mapped_report`] with a [`TraceSink`]. Emits the
    /// same rollup counters as [`crate::mapped::simulate_mapped_traced`]
    /// (fires, wavefront, per-PE loads, violation counts); events come out
    /// cycle-major rather than in lexicographic point order.
    pub fn mapped_report_traced<K: TraceSink>(&self, sink: &mut K) -> MappedRunReport {
        if K::ENABLED {
            for (i, r) in self.mapped_routes.iter().enumerate() {
                match r {
                    Some((usage, _buffers, hops)) => sink.record(TraceEvent::ColumnRoute {
                        column: i,
                        hops: *hops,
                        usage: usage.clone(),
                    }),
                    None => sink.record(TraceEvent::ColumnUnroutable { column: i }),
                }
            }
        }
        let cycles = match (self.cycle_values.first(), self.cycle_values.last()) {
            (Some(a), Some(b)) => b - a + 1,
            _ => 0,
        };
        let mut conflict_free = true;
        let mut peak_parallelism = 0usize;
        let mut seen = vec![false; self.proc_coords.len()];
        for k in 0..self.cycle_values.len() {
            let c = self.cycle_values[k];
            let slice = &self.fire_order[self.cycle_offsets[k]..self.cycle_offsets[k + 1]];
            peak_parallelism = peak_parallelism.max(slice.len());
            for &s in slice {
                let s = s as usize;
                let id = self.proc[s] as usize;
                if K::ENABLED {
                    sink.record(TraceEvent::PointFired {
                        cycle: c,
                        point: self.point(s),
                        processor: self.proc_coords[id].clone(),
                    });
                }
                if seen[id] {
                    conflict_free = false;
                    if K::ENABLED {
                        let v = ClockedViolation::ProcessorConflict {
                            processor: self.proc_coords[id].to_string(),
                            cycle: c,
                        };
                        sink.record(TraceEvent::Violation {
                            cycle: c,
                            description: v.to_string(),
                        });
                    }
                }
                seen[id] = true;
                if K::ENABLED {
                    let mask = self.consume_mask[s];
                    for i in 0..self.m {
                        if mask & (1u64 << i) != 0 && self.mapped_routes[i].is_none() {
                            let v = ClockedViolation::RouteTooSlow {
                                consumer: self.point(s).to_string(),
                                column: i,
                                hops: -1,
                                budget: self.budgets[i],
                            };
                            sink.record(TraceEvent::Violation {
                                cycle: c,
                                description: v.to_string(),
                            });
                        }
                    }
                }
            }
            for &s in slice {
                seen[self.proc[s as usize] as usize] = false;
            }
        }

        let mut causality_ok = true;
        let mut link_traffic = vec![0u64; self.n_links];
        let mut buffer_cycles = 0u64;
        for i in 0..self.m {
            if self.active_count[i] == 0 {
                continue;
            }
            match &self.mapped_routes[i] {
                Some((usage, buffers, _hops)) => {
                    for (j, &cnt) in usage.iter().enumerate() {
                        link_traffic[j] += cnt as u64 * self.active_count[i];
                    }
                    buffer_cycles += *buffers as u64 * self.active_count[i];
                }
                None => causality_ok = false,
            }
        }

        let processors = self.proc_coords.len();
        let utilization = if cycles > 0 && processors > 0 {
            self.n_points as f64 / (processors as f64 * cycles as f64)
        } else {
            0.0
        };
        MappedRunReport {
            cycles,
            processors,
            computations: self.n_points as u128,
            conflict_free,
            causality_ok,
            utilization,
            peak_parallelism,
            link_traffic,
            buffer_cycles,
        }
    }

    /// [`CompiledSchedule::mapped_report_traced`] with a [`FaultInjector`]
    /// (over the unit bundle, like
    /// [`crate::mapped::simulate_mapped_faulted`], whose report this matches
    /// bit for bit). A live injector forces the per-point path — the
    /// aggregate column shortcuts are only valid when every instance of a
    /// column behaves identically; [`NoFaults`] keeps the fast path.
    pub fn mapped_report_faulted<K: TraceSink, F: FaultInjector<()>>(
        &self,
        sink: &mut K,
        faults: &F,
    ) -> MappedRunReport {
        if !F::ENABLED {
            return self.mapped_report_traced(sink);
        }
        if K::ENABLED {
            for (i, r) in self.mapped_routes.iter().enumerate() {
                match r {
                    Some((usage, _buffers, hops)) => sink.record(TraceEvent::ColumnRoute {
                        column: i,
                        hops: *hops,
                        usage: usage.clone(),
                    }),
                    None => sink.record(TraceEvent::ColumnUnroutable { column: i }),
                }
            }
        }
        let mut conflict_free = true;
        let mut causality_ok = true;
        let mut peak_parallelism = 0usize;
        let mut computations = 0u64;
        let mut link_traffic = vec![0u64; self.n_links];
        let mut buffer_cycles = 0u64;
        let mut seen = vec![false; self.proc_coords.len()];
        let dead: Vec<bool> = self
            .proc_coords
            .iter()
            .map(|place| faults.pe_dead(place))
            .collect();
        for k in 0..self.cycle_values.len() {
            let c = self.cycle_values[k];
            let slice = &self.fire_order[self.cycle_offsets[k]..self.cycle_offsets[k + 1]];
            let mut busy = 0usize;
            for &s in slice {
                let s = s as usize;
                let id = self.proc[s] as usize;
                if K::ENABLED {
                    sink.record(TraceEvent::PointFired {
                        cycle: c,
                        point: self.point(s),
                        processor: self.proc_coords[id].clone(),
                    });
                }
                if dead[id] {
                    if K::ENABLED {
                        sink.record(TraceEvent::FaultInjected {
                            cycle: c,
                            point: self.point(s),
                            processor: self.proc_coords[id].clone(),
                            column: None,
                            kind: "dead_pe".into(),
                        });
                    }
                } else {
                    busy += 1;
                    computations += 1;
                }
                if seen[id] {
                    conflict_free = false;
                    if K::ENABLED {
                        let v = ClockedViolation::ProcessorConflict {
                            processor: self.proc_coords[id].to_string(),
                            cycle: c,
                        };
                        sink.record(TraceEvent::Violation {
                            cycle: c,
                            description: v.to_string(),
                        });
                    }
                }
                seen[id] = true;
                if dead[id] {
                    continue;
                }
                let mask = self.consume_mask[s];
                for i in 0..self.m {
                    if mask & (1u64 << i) == 0 {
                        continue;
                    }
                    let tf = faults.on_transfer(c, &self.point(s), i);
                    if tf == TransferFault::Drop {
                        if K::ENABLED {
                            sink.record(TraceEvent::FaultInjected {
                                cycle: c,
                                point: self.point(s),
                                processor: self.proc_coords[id].clone(),
                                column: Some(i),
                                kind: "dropped_transfer".into(),
                            });
                        }
                        continue;
                    }
                    match &self.mapped_routes[i] {
                        Some((usage, buffers, _hops)) => {
                            let mult: u64 = if tf == TransferFault::Duplicate { 2 } else { 1 };
                            for (j, &cnt) in usage.iter().enumerate() {
                                link_traffic[j] += cnt as u64 * mult;
                            }
                            buffer_cycles += *buffers as u64 * mult;
                            if tf == TransferFault::Duplicate && K::ENABLED {
                                sink.record(TraceEvent::FaultInjected {
                                    cycle: c,
                                    point: self.point(s),
                                    processor: self.proc_coords[id].clone(),
                                    column: Some(i),
                                    kind: "duplicated_transfer".into(),
                                });
                            }
                        }
                        None => {
                            causality_ok = false;
                            if K::ENABLED {
                                let v = ClockedViolation::RouteTooSlow {
                                    consumer: self.point(s).to_string(),
                                    column: i,
                                    hops: -1,
                                    budget: self.budgets[i],
                                };
                                sink.record(TraceEvent::Violation {
                                    cycle: c,
                                    description: v.to_string(),
                                });
                            }
                        }
                    }
                }
            }
            peak_parallelism = peak_parallelism.max(busy);
            for &s in slice {
                seen[self.proc[s as usize] as usize] = false;
            }
        }

        let cycles = match (self.cycle_values.first(), self.cycle_values.last()) {
            (Some(a), Some(b)) if computations > 0 => b - a + 1,
            _ => 0,
        };
        let processors = self.proc_coords.len();
        let utilization = if cycles > 0 && processors > 0 {
            computations as f64 / (processors as f64 * cycles as f64)
        } else {
            0.0
        };
        MappedRunReport {
            cycles,
            processors,
            computations: computations as u128,
            conflict_free,
            causality_ok,
            utilization,
            peak_parallelism,
            link_traffic,
            buffer_cycles,
        }
    }
}

/// Compiles and executes in one call — the drop-in counterpart of
/// [`crate::clocked::run_clocked`] for pure cell semantics. For repeated runs
/// of one architecture, build the [`CompiledSchedule`] once and call
/// [`CompiledSchedule::execute`] per workload.
pub fn run_clocked_compiled<S: SyncCellSemantics>(
    alg: &AlgorithmTriplet,
    t: &MappingMatrix,
    ic: &Interconnect,
    semantics: &S,
) -> ClockedRun<S::Bundle> {
    CompiledSchedule::compile(alg, t, ic).execute(semantics)
}

/// Compiled counterpart of [`crate::mapped::simulate_mapped`]: identical
/// report, computed from the dense-slot schedule.
pub fn simulate_mapped_compiled(
    alg: &AlgorithmTriplet,
    t: &MappingMatrix,
    ic: &Interconnect,
) -> MappedRunReport {
    CompiledSchedule::compile(alg, t, ic).mapped_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clocked::{run_clocked, MatmulExpansionIICells, MatmulSignals};
    use crate::mapped::simulate_mapped;
    use bitlevel_ir::{BoxSet, Dependence, DependenceSet, Predicate};
    use bitlevel_linalg::IMat;
    use bitlevel_mapping::PaperDesign;

    fn matmul_structure(u: i64, p: i64) -> AlgorithmTriplet {
        let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
        AlgorithmTriplet::new(
            j,
            DependenceSet::new(vec![
                Dependence::conditional([0, 1, 0, 0, 0], "x", Predicate::eq_const(3, 1)),
                Dependence::conditional([1, 0, 0, 0, 0], "y", Predicate::eq_const(4, 1)),
                Dependence::conditional(
                    [0, 0, 1, 0, 0],
                    "z",
                    Predicate::eq_const(3, p).or(&Predicate::eq_const(4, 1)),
                ),
                Dependence::conditional([0, 0, 0, 1, 0], "x", Predicate::ne_const(3, 1)),
                Dependence::conditional([0, 0, 0, 0, 1], "y,c", Predicate::ne_const(4, 1)),
                Dependence::uniform([0, 0, 0, 1, -1], "z"),
                Dependence::conditional([0, 0, 0, 0, 2], "c'", Predicate::eq_const(3, p)),
            ]),
            "bit-level matmul, Expansion II (composed order)",
        )
    }

    fn mats(u: usize, p: usize) -> (Vec<Vec<u128>>, Vec<Vec<u128>>) {
        let m = crate::BitMatmulArray::new(u, p).max_safe_entry();
        let x = (0..u)
            .map(|i| {
                (0..u)
                    .map(|j| ((3 * i + 5 * j + 1) as u128) % (m + 1))
                    .collect()
            })
            .collect();
        let y = (0..u)
            .map(|i| {
                (0..u)
                    .map(|j| ((7 * i + j + 2) as u128) % (m + 1))
                    .collect()
            })
            .collect();
        (x, y)
    }

    fn assert_runs_identical(a: &ClockedRun<MatmulSignals>, b: &ClockedRun<MatmulSignals>) {
        assert_eq!(a.cycles, b.cycles, "cycle counts differ");
        assert_eq!(a.violations, b.violations, "violation streams differ");
        assert_eq!(a.peak_in_flight, b.peak_in_flight, "in-flight peaks differ");
        assert_eq!(a.outputs, b.outputs, "output bundles differ");
    }

    fn assert_reports_identical(a: &MappedRunReport, b: &MappedRunReport) {
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.processors, b.processors);
        assert_eq!(a.computations, b.computations);
        assert_eq!(a.conflict_free, b.conflict_free);
        assert_eq!(a.causality_ok, b.causality_ok);
        assert_eq!(a.peak_parallelism, b.peak_parallelism);
        assert_eq!(a.link_traffic, b.link_traffic);
        assert_eq!(a.buffer_cycles, b.buffer_cycles);
        assert!((a.utilization - b.utilization).abs() < 1e-12);
    }

    #[test]
    fn compiled_run_is_bit_identical_on_both_paper_designs() {
        for (u, p) in [(2usize, 2usize), (3, 3), (2, 4)] {
            let alg = matmul_structure(u as i64, p as i64);
            let (x, y) = mats(u, p);
            for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
                let t = design.mapping(p as i64);
                let ic = design.interconnect(p as i64);
                let mut cells = MatmulExpansionIICells::new(u, p, &x, &y);
                let interpreted = run_clocked(&alg, &t, &ic, &mut cells);
                let compiled = run_clocked_compiled(&alg, &t, &ic, &cells);
                assert_runs_identical(&compiled, &interpreted);
                assert!(compiled.is_legal());
                let z = cells.extract_product(&compiled);
                for i in 0..u {
                    for j in 0..u {
                        let want: u128 = (0..u).map(|k| x[i][k] * y[k][j]).sum();
                        assert_eq!(z[i][j], want, "u={u} p={p} Z[{i}][{j}]");
                    }
                }
            }
        }
    }

    #[test]
    fn compiled_schedule_reruns_without_recompiling() {
        let (u, p) = (3usize, 3usize);
        let alg = matmul_structure(u as i64, p as i64);
        let design = PaperDesign::TimeOptimal;
        let sched = CompiledSchedule::compile(&alg, &design.mapping(3), &design.interconnect(3));
        assert!(sched.is_causal());
        assert_eq!(sched.n_points(), 27 * 9);
        assert_eq!(sched.n_processors(), 81);
        let (x, y) = mats(u, p);
        let cells = MatmulExpansionIICells::new(u, p, &x, &y);
        let first = sched.execute(&cells);
        let second = sched.execute(&cells);
        assert_runs_identical(&first, &second);
    }

    #[test]
    fn route_violations_match_interpreted_engine() {
        // Fig. 4's fast schedule on the wire-poor machine: budgets stay
        // positive (causal parallel path) but routes miss their budgets.
        let (u, p) = (2usize, 2usize);
        let alg = matmul_structure(u as i64, p as i64);
        let t = PaperDesign::TimeOptimal.mapping(p as i64);
        let ic = PaperDesign::NearestNeighbour.interconnect(p as i64);
        let (x, y) = mats(u, p);
        let mut cells = MatmulExpansionIICells::new(u, p, &x, &y);
        let interpreted = run_clocked(&alg, &t, &ic, &mut cells);
        let compiled = run_clocked_compiled(&alg, &t, &ic, &cells);
        assert!(!compiled.is_legal());
        assert_runs_identical(&compiled, &interpreted);
    }

    #[test]
    fn processor_conflicts_match_interpreted_engine() {
        let (u, p) = (2usize, 2usize);
        let alg = matmul_structure(u as i64, p as i64);
        let t = MappingMatrix::new(
            IMat::from_rows(&[&[0, 0, 0, 0, 0], &[0, 2, 0, 0, 1]]),
            IVec::from([1, 1, 1, 2, 1]),
        );
        let ic = Interconnect::paper_p(2);
        let (x, y) = mats(u, p);
        let mut cells = MatmulExpansionIICells::new(u, p, &x, &y);
        let interpreted = run_clocked(&alg, &t, &ic, &mut cells);
        let compiled = run_clocked_compiled(&alg, &t, &ic, &cells);
        assert!(compiled
            .violations
            .iter()
            .any(|v| matches!(v, ClockedViolation::ProcessorConflict { .. })));
        assert_runs_identical(&compiled, &interpreted);
    }

    #[test]
    fn non_causal_schedule_falls_back_bit_identically() {
        // Zero out the intra-tile schedule components: d̄₄…d̄₇ get budget ≤ 0,
        // the parallel path is ineligible, and the sequential dense replay
        // must still match the interpreted engine exactly (including
        // CausalityOrder violations and same-cycle-producer visibility).
        let (u, p) = (2usize, 2usize);
        let alg = matmul_structure(u as i64, p as i64);
        let t = MappingMatrix::new(
            PaperDesign::TimeOptimal.mapping(p as i64).space.clone(),
            IVec::from([1, 1, 1, 0, 0]),
        );
        let ic = PaperDesign::TimeOptimal.interconnect(p as i64);
        let sched = CompiledSchedule::compile(&alg, &t, &ic);
        assert!(!sched.is_causal());
        let (x, y) = mats(u, p);
        let mut cells = MatmulExpansionIICells::new(u, p, &x, &y);
        let interpreted = run_clocked(&alg, &t, &ic, &mut cells);
        let compiled = sched.execute(&cells);
        assert_runs_identical(&compiled, &interpreted);
    }

    #[test]
    fn mapped_report_matches_interpreted_simulator() {
        for (u, p) in [(2i64, 2i64), (3, 3), (4, 3)] {
            let alg = matmul_structure(u, p);
            for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
                let t = design.mapping(p);
                let ic = design.interconnect(p);
                assert_reports_identical(
                    &simulate_mapped_compiled(&alg, &t, &ic),
                    &simulate_mapped(&alg, &t, &ic),
                );
            }
        }
    }

    #[test]
    fn mapped_report_matches_on_broken_designs_too() {
        let alg = matmul_structure(2, 2);
        // Conflicting space mapping.
        let t = MappingMatrix::new(
            IMat::from_rows(&[&[0, 0, 0, 0, 0], &[0, 2, 0, 0, 1]]),
            IVec::from([1, 1, 1, 2, 1]),
        );
        assert_reports_identical(
            &simulate_mapped_compiled(&alg, &t, &Interconnect::paper_p(2)),
            &simulate_mapped(&alg, &t, &Interconnect::paper_p(2)),
        );
        // Causality-violating machine.
        let t = PaperDesign::TimeOptimal.mapping(2);
        assert_reports_identical(
            &simulate_mapped_compiled(&alg, &t, &Interconnect::paper_p_prime()),
            &simulate_mapped(&alg, &t, &Interconnect::paper_p_prime()),
        );
    }

    #[test]
    fn backend_default_is_compiled() {
        assert_eq!(SimBackend::default(), SimBackend::Compiled);
    }

    /// A 2-D structure with 65 uniform dependence columns: valid for the
    /// interpreted engines, one column too many for the bitmasks.
    fn many_column_structure() -> AlgorithmTriplet {
        let deps: Vec<Dependence> = (0..65)
            .map(|k| Dependence::uniform(IVec::from([1, 0]), &format!("c{k}")))
            .collect();
        AlgorithmTriplet::new(
            BoxSet::cube(2, 1, 3),
            DependenceSet::new(deps),
            "65 columns",
        )
    }

    #[test]
    fn try_compile_rejects_65_dependence_columns() {
        let alg = many_column_structure();
        let t = MappingMatrix::new(IMat::from_rows(&[&[1, 0], &[0, 1]]), IVec::from([1, 1]));
        let ic = Interconnect::new(IMat::from_rows(&[&[1, 0], &[0, 1]]));
        let err = CompiledSchedule::try_compile(&alg, &t, &ic)
            .err()
            .expect("must not compile");
        assert_eq!(err, CompileError::TooManyColumns { m: 65 });
        assert!(err.to_string().contains("at most 64 dependence columns"));
        // The interpreted engine handles the same input fine.
        let rep = simulate_mapped(&alg, &t, &ic);
        assert_eq!(rep.computations, 9);
    }

    #[test]
    fn try_compile_rejects_over_u32_index_sets_before_allocating() {
        // 256^4 = 2^32 points: one too many for dense u32 slots. try_compile
        // must reject in O(1), long before any per-point allocation.
        let alg = AlgorithmTriplet::new(
            BoxSet::cube(4, 1, 256),
            DependenceSet::new(vec![Dependence::uniform(IVec::from([1, 0, 0, 0]), "x")]),
            "over-u32 index set",
        );
        let t = MappingMatrix::new(
            IMat::from_rows(&[&[1, 0, 0, 0], &[0, 1, 0, 0]]),
            IVec::from([1, 1, 1, 1]),
        );
        let ic = Interconnect::new(IMat::from_rows(&[&[1, 0], &[0, 1]]));
        let err = CompiledSchedule::try_compile(&alg, &t, &ic)
            .err()
            .expect("must not compile");
        assert_eq!(
            err,
            CompileError::IndexSetTooLarge {
                cardinality: 1u128 << 32
            }
        );
        assert!(err.to_string().contains("index set too large"));
    }

    #[test]
    #[should_panic(expected = "at most 64 dependence columns")]
    fn compile_still_panics_with_the_original_message() {
        let alg = many_column_structure();
        let t = MappingMatrix::new(IMat::from_rows(&[&[1, 0], &[0, 1]]), IVec::from([1, 1]));
        let ic = Interconnect::new(IMat::from_rows(&[&[1, 0], &[0, 1]]));
        let _ = CompiledSchedule::compile(&alg, &t, &ic);
    }

    #[test]
    fn traced_mapped_report_matches_interpreted_rollup() {
        use crate::mapped::simulate_mapped_traced;
        use crate::trace::RecordingSink;
        let alg = matmul_structure(3, 3);
        // A legal design and a broken one (conflicts + unroutable columns).
        let designs: Vec<(MappingMatrix, Interconnect)> = vec![
            (
                PaperDesign::TimeOptimal.mapping(3),
                PaperDesign::TimeOptimal.interconnect(3),
            ),
            (
                PaperDesign::TimeOptimal.mapping(3),
                Interconnect::paper_p_prime(),
            ),
            (
                MappingMatrix::new(
                    IMat::from_rows(&[&[0, 0, 0, 0, 0], &[0, 2, 0, 0, 1]]),
                    IVec::from([1, 1, 1, 2, 1]),
                ),
                Interconnect::paper_p(3),
            ),
        ];
        for (t, ic) in &designs {
            let mut interp = RecordingSink::new();
            let a = simulate_mapped_traced(&alg, t, ic, &mut interp);
            let mut comp = RecordingSink::new();
            let b = CompiledSchedule::compile(&alg, t, ic).mapped_report_traced(&mut comp);
            assert_eq!(a.cycles, b.cycles);
            let (ri, rc) = (interp.rollup(), comp.rollup());
            assert_eq!(ri.fire_total(), rc.fire_total());
            assert_eq!(ri.fire_total(), 243);
            assert_eq!(ri.wavefront, rc.wavefront);
            assert_eq!(ri.pe_fires, rc.pe_fires);
            assert_eq!(ri.violations, rc.violations);
            assert_eq!(ri.cycle_span(), a.cycles);
        }
    }

    #[test]
    fn traced_execution_is_bit_identical_to_untraced() {
        use crate::trace::RecordingSink;
        let (u, p) = (3usize, 3usize);
        let alg = matmul_structure(u as i64, p as i64);
        let design = PaperDesign::TimeOptimal;
        let sched = CompiledSchedule::compile(&alg, &design.mapping(3), &design.interconnect(3));
        let (x, y) = mats(u, p);
        let cells = MatmulExpansionIICells::new(u, p, &x, &y);
        let untraced = sched.execute(&cells);
        let mut sink = RecordingSink::new();
        let traced = sched.execute_traced(&cells, &mut sink);
        assert_runs_identical(&traced, &untraced);
        assert_eq!(
            sink.rollup().fire_total() as u128,
            alg.index_set.cardinality()
        );
        assert_eq!(sink.rollup().cycle_span(), traced.cycles);
        // Every launched token on every column is eventually consumed (the
        // matmul structure drains completely), and the in-flight peaks seen
        // by the trace are the run's.
        assert_eq!(sink.rollup().in_flight_peak, traced.peak_in_flight);
    }
}
