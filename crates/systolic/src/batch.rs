//! Lane-packed batch simulation: up to 64 independent problem instances per
//! compiled-schedule walk.
//!
//! Every signal in the paper's expanded bit-level arrays carries a single
//! bit, so the per-cycle bookkeeping of the compiled backend — slot ranking,
//! CSR fire-list walks, token-arena updates — is pure overhead amortised
//! over one bit of payload. This module packs the same bit of up to
//! [`MAX_LANES`] *independent* instances into the bit-lanes of a `u64` (the
//! ultra-wide word model): lane *i* of every word belongs to instance *i*,
//! and one [`crate::compiled::CompiledSchedule::execute_batch`] walk then
//! simulates the whole batch.
//!
//! Why this is sound: which inputs are `Some`, which dependence columns are
//! active, the firing order, the violations and the in-flight peaks are all
//! *schedule* properties — functions of `(J, D, E, T, P)` only, identical in
//! every lane. Only token values differ per lane, and the cell functions are
//! bitwise (parity / majority / the 5-input wide adder), so evaluating them
//! on words evaluates every lane's scalar function simultaneously.
//!
//! The wordization contract, per semantics:
//! * [`MatmulLaneCells`] — the bitwise word form of
//!   [`MatmulExpansionIICells`]: every control decision in `compute` depends
//!   only on the index point and input presence (lane-uniform), so the
//!   scalar body ports to [`LaneWord`] operations verbatim;
//! * [`crate::model35::Model35LaneCells`] — the same bitwise port of the
//!   generic model-(3.5) cells, covering convolution, matrix–vector and the
//!   other Section 3.2 workloads word-wide;
//! * [`PerLaneCells`] — the tested **last resort** for a
//!   [`SyncCellSemantics`] with no bitwise word form: packed tokens are
//!   `Vec<Bundle>` and the cell is evaluated per lane;
//! * [`LaneView`] — adapts one lane of any [`LaneCellSemantics`] back into a
//!   scalar [`SyncCellSemantics`], so the existing engines (including the
//!   fault-injecting ones) can replay a single instance bit-exactly;
//! * [`LaneFaultedCells`] — wraps any bitwise [`LaneCellSemantics`] with a
//!   [`LaneFaultMasks`] schedule of **per-lane output faults** (transient
//!   flips, stuck-at), so up to [`MAX_LANES`] *distinct fault cases* ride
//!   one word-wide walk: faults perturb only token values after compute,
//!   never the (lane-uniform) control flow, so the wordization argument is
//!   untouched and each lane sees exactly the scalar faulted semantics.

use crate::clocked::{
    CellSemantics, ClockedRun, ClockedViolation, MatmulExpansionIICells, MatmulSignals,
    SyncCellSemantics,
};
use crate::fault::FaultableBundle;
use bitlevel_arith::{
    flip_lanes, full_add_lanes, lane_bit, set_lanes, to_bits, wide_add_lanes, Bit, LaneWord,
};
use bitlevel_linalg::IVec;
use std::collections::HashMap;
use std::fmt;

pub use bitlevel_arith::MAX_LANES;

/// Cell semantics evaluated one machine word — one *lane* per problem
/// instance — at a time.
///
/// `Packed` is the word form of a token bundle (one [`LaneWord`] per signal
/// for bitwise semantics, `Vec<Bundle>` for the per-lane fallback), `Bundle`
/// is the scalar per-lane form every existing consumer understands. The
/// contract binding them: for every index point `q`, every lane `l` and
/// every input row, `extract_lane(compute_lanes(q, packed), l)` must equal
/// `compute_lane(l, q, per-lane inputs)` — the engine-agreement tests pin
/// this down against the interpreted oracle.
pub trait LaneCellSemantics: Sync {
    /// Scalar per-lane signal bundle (what a [`ClockedRun`] carries).
    type Bundle: Clone + Send + Sync + fmt::Debug;
    /// Lane-packed token: one word (or vector) covering all lanes at once.
    type Packed: Clone + Send + Sync + fmt::Debug;

    /// Number of occupied lanes, `1..=MAX_LANES`. Lanes `>= lanes()` are
    /// unused and must stay all-zero in every packed token.
    fn lanes(&self) -> usize;

    /// Computes the cell at `q` for all lanes at once. `inputs[i]` follows
    /// the same contract as [`SyncCellSemantics::compute`] — `None` marks an
    /// inactive column or boundary input, uniformly across lanes.
    fn compute_lanes(&self, q: &IVec, inputs: &[Option<Self::Packed>]) -> Self::Packed;

    /// Computes a single lane with scalar tokens — the reference form used
    /// by [`LaneView`] for faulted replays and verification.
    fn compute_lane(&self, lane: usize, q: &IVec, inputs: &[Option<Self::Bundle>]) -> Self::Bundle;

    /// Reads lane `lane` of a packed token as a scalar bundle.
    fn extract_lane(&self, packed: &Self::Packed, lane: usize) -> Self::Bundle;
}

/// The batch engine's token store: one lane-packed token per dense signal
/// slot, the word-wide counterpart of the scalar engine's
/// `Vec<Option<Bundle>>` arena.
#[derive(Debug, Clone)]
pub struct LaneArena<P> {
    slots: Vec<Option<P>>,
}

impl<P: Clone> LaneArena<P> {
    /// An empty arena with `n_slots` unsettled slots.
    pub fn new(n_slots: usize) -> Self {
        LaneArena {
            slots: vec![None; n_slots],
        }
    }
}

impl<P> LaneArena<P> {
    /// The slot array (settled slots are `Some`).
    pub fn slots(&self) -> &[Option<P>] {
        &self.slots
    }

    /// Settles slot `s` with its computed lane-packed token.
    #[inline]
    pub fn set(&mut self, s: usize, packed: P) {
        self.slots[s] = Some(packed);
    }

    /// Consumes the arena, yielding the settled slots.
    pub fn into_slots(self) -> Vec<Option<P>> {
        self.slots
    }
}

/// Result of one lane-packed batch walk.
///
/// Violations, cycle count and per-column in-flight peaks are schedule
/// properties — identical in every lane — and are therefore stored once for
/// the whole batch. Only `outputs` is lane-packed.
#[derive(Debug, Clone)]
pub struct BatchRun<P> {
    /// First-to-last busy cycle, inclusive (same in every lane).
    pub cycles: i64,
    /// Number of occupied lanes.
    pub lanes: usize,
    /// Lane-packed output token of every index point.
    pub outputs: HashMap<IVec, P>,
    /// All violations (shared: value-independent, hence lane-uniform).
    pub violations: Vec<ClockedViolation>,
    /// Per-column in-flight peaks (shared, like `violations`).
    pub peak_in_flight: Vec<u64>,
}

impl<P> BatchRun<P> {
    /// True iff the walk exposed no timing, routing or conflict violations
    /// (a property of the architecture, not of any lane's operands).
    pub fn is_legal(&self) -> bool {
        self.violations.is_empty()
    }

    /// Rebuilds the per-instance [`ClockedRun`] of one lane — bit-identical
    /// to a scalar `execute` of that instance, so every existing report,
    /// trace and fault consumer keeps working on batch results.
    ///
    /// # Panics
    /// Panics if `lane >= self.lanes`.
    pub fn extract_lane_run<L>(&self, lanes: &L, lane: usize) -> ClockedRun<L::Bundle>
    where
        L: LaneCellSemantics<Packed = P>,
    {
        assert!(
            lane < self.lanes,
            "lane {lane} out of range for a {}-lane batch",
            self.lanes
        );
        ClockedRun {
            cycles: self.cycles,
            outputs: self
                .outputs
                .iter()
                .map(|(q, packed)| (q.clone(), lanes.extract_lane(packed, lane)))
                .collect(),
            violations: self.violations.clone(),
            peak_in_flight: self.peak_in_flight.clone(),
        }
    }

    /// [`BatchRun::extract_lane_run`] for every occupied lane, in order.
    pub fn lane_runs<L>(&self, lanes: &L) -> Vec<ClockedRun<L::Bundle>>
    where
        L: LaneCellSemantics<Packed = P>,
    {
        (0..self.lanes)
            .map(|lane| self.extract_lane_run(lanes, lane))
            .collect()
    }
}

/// Result of a batch walk with a fault injected into a single lane: the
/// clean word-wide batch plus the targeted lane's scalar faulted replay.
#[derive(Debug, Clone)]
pub struct FaultedBatchRun<P, B> {
    /// The clean batch — what every *untargeted* lane experienced.
    pub batch: BatchRun<P>,
    /// The lane the injector was aimed at.
    pub fault_lane: usize,
    /// The targeted lane's faulted run (`None` when the injector was
    /// statically inert, i.e. [`crate::fault::NoFaults`]).
    pub faulted: Option<ClockedRun<B>>,
}

impl<P, B: Clone> FaultedBatchRun<P, B> {
    /// The per-instance run of `lane`: the faulted replay for the targeted
    /// lane, the clean batch extraction for every other.
    pub fn lane_run<L>(&self, lanes: &L, lane: usize) -> ClockedRun<B>
    where
        L: LaneCellSemantics<Packed = P, Bundle = B>,
    {
        if lane == self.fault_lane {
            if let Some(faulted) = &self.faulted {
                return faulted.clone();
            }
        }
        self.batch.extract_lane_run(lanes, lane)
    }
}

/// A single lane of a [`LaneCellSemantics`], viewed as scalar
/// [`SyncCellSemantics`] — the bridge back into the existing engines
/// (interpreted, compiled, faulted).
pub struct LaneView<'a, L: LaneCellSemantics> {
    lanes: &'a L,
    lane: usize,
}

impl<'a, L: LaneCellSemantics> LaneView<'a, L> {
    /// Views lane `lane` of `lanes`.
    ///
    /// # Panics
    /// Panics if `lane >= lanes.lanes()`.
    pub fn new(lanes: &'a L, lane: usize) -> Self {
        assert!(
            lane < lanes.lanes(),
            "lane {lane} out of range for a {}-lane batch",
            lanes.lanes()
        );
        LaneView { lanes, lane }
    }
}

impl<L: LaneCellSemantics> SyncCellSemantics for LaneView<'_, L> {
    type Bundle = L::Bundle;

    fn compute(&self, q: &IVec, inputs: &[Option<L::Bundle>]) -> L::Bundle {
        self.lanes.compute_lane(self.lane, q, inputs)
    }
}

impl<L: LaneCellSemantics> CellSemantics for LaneView<'_, L> {
    type Bundle = L::Bundle;

    fn compute(&mut self, q: &IVec, inputs: &[Option<L::Bundle>]) -> L::Bundle {
        SyncCellSemantics::compute(self, q, inputs)
    }
}

/// Generic per-lane **last resort**: batches a pure [`SyncCellSemantics`]
/// that has no bitwise word form by evaluating one cell instance per lane.
/// Packed tokens are `Vec<Bundle>` (index = lane): every slot of every
/// cycle heap-allocates one `Vec` and clones each lane's input bundles —
/// even at width 1, where a bitwise semantics carries a `Copy` word and
/// allocates nothing. Prefer [`MatmulLaneCells`] for the matmul cells and
/// [`crate::model35::Model35LaneCells`] for every other model-(3.5)
/// workload; reach for this only when the semantics genuinely cannot be
/// wordized (value-dependent control flow). The schedule walk is still
/// amortised over the batch, so it remains faster than per-instance scalar
/// walks — just without the word-parallel arithmetic win.
pub struct PerLaneCells<S> {
    cells: Vec<S>,
}

impl<S: SyncCellSemantics> PerLaneCells<S> {
    /// Batches `cells` (one semantics instance per lane).
    ///
    /// # Panics
    /// Panics on an empty batch or more than [`MAX_LANES`] instances.
    pub fn new(cells: Vec<S>) -> Self {
        assert!(
            (1..=MAX_LANES).contains(&cells.len()),
            "batch must hold 1..={MAX_LANES} instances, got {}",
            cells.len()
        );
        PerLaneCells { cells }
    }

    /// The scalar semantics of one lane.
    pub fn lane_cells(&self, lane: usize) -> &S {
        &self.cells[lane]
    }
}

impl<S: SyncCellSemantics> LaneCellSemantics for PerLaneCells<S> {
    type Bundle = S::Bundle;
    type Packed = Vec<S::Bundle>;

    fn lanes(&self) -> usize {
        self.cells.len()
    }

    fn compute_lanes(&self, q: &IVec, inputs: &[Option<Vec<S::Bundle>>]) -> Vec<S::Bundle> {
        let mut lane_inputs: Vec<Option<S::Bundle>> = Vec::with_capacity(inputs.len());
        self.cells
            .iter()
            .enumerate()
            .map(|(lane, cell)| {
                lane_inputs.clear();
                lane_inputs.extend(
                    inputs
                        .iter()
                        .map(|packed| packed.as_ref().map(|v| v[lane].clone())),
                );
                cell.compute(q, &lane_inputs)
            })
            .collect()
    }

    fn compute_lane(&self, lane: usize, q: &IVec, inputs: &[Option<S::Bundle>]) -> S::Bundle {
        self.cells[lane].compute(q, inputs)
    }

    fn extract_lane(&self, packed: &Vec<S::Bundle>, lane: usize) -> S::Bundle {
        packed[lane].clone()
    }
}

/// Word form of [`FaultableBundle`]: a lane-packed token whose per-lane
/// signal bits a [`LaneFaultMasks`] schedule can address. Bit indices match
/// the scalar bundle's [`FaultableBundle`] numbering, so a fault plan means
/// the same wire on both forms.
pub trait LanePackedBundle {
    /// Inverts signal `bit` in every lane selected by `mask`.
    fn flip_bit_lanes(&mut self, bit: usize, mask: LaneWord);

    /// Forces signal `bit` to `value` in every lane selected by `mask`.
    fn set_bit_lanes(&mut self, bit: usize, value: bool, mask: LaneWord);
}

/// A per-lane schedule of **output-side** faults for one lane-packed walk:
/// at index point `q`, flip (or force) signal `bit` in exactly the lanes
/// selected by a mask. This is the word form of the exhaustive-campaign
/// fault space — transient flips and stuck-at faults on a computed bundle —
/// and deliberately excludes transfer faults and dead PEs, whose effects
/// are not per-lane value edits (those cases take the scalar
/// [`LaneView`] replay path of
/// [`crate::compiled::CompiledSchedule::execute_batch_faulted`]).
///
/// Soundness: the batch walk's control flow (gathers, firing order,
/// bookkeeping) never reads token values, so editing lanes of a computed
/// word cannot desynchronise the walk — each lane simply carries the value
/// stream its scalar faulted run would have carried.
#[derive(Debug, Clone, Default)]
pub struct LaneFaultMasks {
    /// `point -> [(bit, value, lane mask)]`, applied before flips (the
    /// scalar injector's order: stuck-at, then transient flips).
    stuck: HashMap<IVec, Vec<(usize, bool, LaneWord)>>,
    /// `point -> [(bit, lane mask)]`.
    flips: HashMap<IVec, Vec<(usize, LaneWord)>>,
}

impl LaneFaultMasks {
    /// An empty schedule (applying it is a no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a transient flip of signal `bit` at `point`, in lane `lane`.
    /// Flipping the same `(point, bit, lane)` twice cancels, exactly like
    /// two scalar flips on one wire.
    ///
    /// # Panics
    /// Panics if `lane >= MAX_LANES`.
    pub fn flip(&mut self, point: IVec, bit: usize, lane: usize) {
        assert!(lane < MAX_LANES, "lane {lane} out of range");
        let masks = self.flips.entry(point).or_default();
        match masks.iter_mut().find(|(b, _)| *b == bit) {
            Some(m) => m.1 ^= 1 << lane,
            None => masks.push((bit, 1 << lane)),
        }
    }

    /// Adds a stuck-at fault forcing signal `bit` to `value` at `point`, in
    /// lane `lane`.
    ///
    /// # Panics
    /// Panics if `lane >= MAX_LANES`.
    pub fn stuck(&mut self, point: IVec, bit: usize, value: bool, lane: usize) {
        assert!(lane < MAX_LANES, "lane {lane} out of range");
        let masks = self.stuck.entry(point).or_default();
        match masks.iter_mut().find(|(b, v, _)| *b == bit && *v == value) {
            Some(m) => m.2 |= 1 << lane,
            None => masks.push((bit, value, 1 << lane)),
        }
    }

    /// True iff no fault is scheduled anywhere.
    pub fn is_empty(&self) -> bool {
        self.stuck.is_empty() && self.flips.is_empty()
    }

    /// Applies every fault scheduled at `q` to a packed token, all lanes at
    /// once (stuck-at before flips, matching the scalar injector).
    pub fn apply<P: LanePackedBundle>(&self, q: &IVec, packed: &mut P) {
        if let Some(masks) = self.stuck.get(q) {
            for &(bit, value, mask) in masks {
                packed.set_bit_lanes(bit, value, mask);
            }
        }
        if let Some(masks) = self.flips.get(q) {
            for &(bit, mask) in masks {
                packed.flip_bit_lanes(bit, mask);
            }
        }
    }

    /// Applies the faults scheduled at `q` **for one lane** to a scalar
    /// bundle — the reference form [`LaneFaultedCells::compute_lane`] uses,
    /// bit-identical to masking lane `lane` of [`LaneFaultMasks::apply`].
    pub fn apply_lane<B: FaultableBundle>(&self, q: &IVec, lane: usize, bundle: &mut B) {
        if let Some(masks) = self.stuck.get(q) {
            for &(bit, value, mask) in masks {
                if lane_bit(mask, lane) {
                    bundle.set_bit(bit, value);
                }
            }
        }
        if let Some(masks) = self.flips.get(q) {
            for &(bit, mask) in masks {
                if lane_bit(mask, lane) {
                    bundle.flip_bit(bit);
                }
            }
        }
    }
}

/// Wraps a bitwise [`LaneCellSemantics`] with a [`LaneFaultMasks`] schedule:
/// every computed token gets its per-lane output faults applied *before*
/// settling into the arena, so downstream consumers read the faulted values
/// — exactly where the scalar engines' `FaultInjector::on_output` hook
/// lands. One word-wide walk of the wrapped semantics therefore simulates
/// up to [`MAX_LANES`] **distinct single-fault cases** (or clean lanes)
/// simultaneously, which is what turns an exhaustive fault campaign from
/// one-walk-per-case into one-walk-per-64-cases.
pub struct LaneFaultedCells<'a, L: LaneCellSemantics> {
    inner: &'a L,
    masks: &'a LaneFaultMasks,
}

impl<'a, L: LaneCellSemantics> LaneFaultedCells<'a, L> {
    /// Wraps `inner` under the fault schedule `masks`.
    pub fn new(inner: &'a L, masks: &'a LaneFaultMasks) -> Self {
        LaneFaultedCells { inner, masks }
    }
}

impl<L> LaneCellSemantics for LaneFaultedCells<'_, L>
where
    L: LaneCellSemantics,
    L::Packed: LanePackedBundle,
    L::Bundle: FaultableBundle + Send + Sync + fmt::Debug,
{
    type Bundle = L::Bundle;
    type Packed = L::Packed;

    fn lanes(&self) -> usize {
        self.inner.lanes()
    }

    fn compute_lanes(&self, q: &IVec, inputs: &[Option<L::Packed>]) -> L::Packed {
        let mut packed = self.inner.compute_lanes(q, inputs);
        self.masks.apply(q, &mut packed);
        packed
    }

    fn compute_lane(&self, lane: usize, q: &IVec, inputs: &[Option<L::Bundle>]) -> L::Bundle {
        let mut bundle = self.inner.compute_lane(lane, q, inputs);
        self.masks.apply_lane(q, lane, &mut bundle);
        bundle
    }

    fn extract_lane(&self, packed: &L::Packed, lane: usize) -> L::Bundle {
        self.inner.extract_lane(packed, lane)
    }
}

/// Lane-packed signal bundle of the Expansion II matmul cell: the word form
/// of [`MatmulSignals`], one [`LaneWord`] per signal wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatmulLaneSignals {
    /// The x operand bits, one lane per instance.
    pub x: LaneWord,
    /// The y operand bits.
    pub y: LaneWord,
    /// The partial-sum outputs.
    pub s: LaneWord,
    /// The carry outputs.
    pub c: LaneWord,
    /// The second carry outputs (i₁ = p plane).
    pub cp: LaneWord,
}

/// Bitwise word form of [`MatmulExpansionIICells`]: one batch of up to
/// [`MAX_LANES`] independent `u×u`, `p`-bit matrix multiplications.
///
/// Every control decision in the scalar `compute` — which operand plane to
/// read, which adder form to use, whether an input is present — depends only
/// on the index point and the schedule, never on token values, so the body
/// ports to [`LaneWord`] operations verbatim and each lane computes exactly
/// the scalar function.
pub struct MatmulLaneCells {
    u: usize,
    p: usize,
    lanes: usize,
    /// Lane-packed operand bit planes: `x_words[j1][j3][k]` holds bit `k`
    /// (LSB first) of `X[j1][j3]` for every lane; `y_words[j3][j2][k]`
    /// likewise for `Y`.
    x_words: Vec<Vec<Vec<LaneWord>>>,
    y_words: Vec<Vec<Vec<LaneWord>>>,
    /// Scalar per-lane semantics, for [`LaneView`] replays and extraction.
    scalar: Vec<MatmulExpansionIICells>,
}

impl MatmulLaneCells {
    /// Packs a batch of operand matrix pairs — `xs[l]`, `ys[l]` are the
    /// `u×u` matrices of instance (lane) `l`, entries at most `p` bits.
    ///
    /// # Panics
    /// Panics on an empty batch, more than [`MAX_LANES`] instances,
    /// mismatched batch lengths, or operand shape/width violations.
    pub fn new(u: usize, p: usize, xs: &[Vec<Vec<u128>>], ys: &[Vec<Vec<u128>>]) -> Self {
        assert!(
            (1..=MAX_LANES).contains(&xs.len()),
            "batch must hold 1..={MAX_LANES} instances, got {}",
            xs.len()
        );
        assert_eq!(xs.len(), ys.len(), "x/y batch length mismatch");
        let scalar: Vec<MatmulExpansionIICells> = xs
            .iter()
            .zip(ys)
            .map(|(x, y)| MatmulExpansionIICells::new(u, p, x, y))
            .collect();
        let lanes = xs.len();
        let mut x_words = vec![vec![vec![0 as LaneWord; p]; u]; u];
        let mut y_words = vec![vec![vec![0 as LaneWord; p]; u]; u];
        for lane in 0..lanes {
            for a in 0..u {
                for b in 0..u {
                    for (k, &bit) in to_bits(xs[lane][a][b], p).iter().enumerate() {
                        x_words[a][b][k] |= (bit as LaneWord) << lane;
                    }
                    for (k, &bit) in to_bits(ys[lane][a][b], p).iter().enumerate() {
                        y_words[a][b][k] |= (bit as LaneWord) << lane;
                    }
                }
            }
        }
        MatmulLaneCells {
            u,
            p,
            lanes,
            x_words,
            y_words,
            scalar,
        }
    }

    /// Matrix size `u`.
    pub fn u(&self) -> usize {
        self.u
    }

    /// Operand bit width `p`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The scalar semantics of one lane (for replays and verification).
    pub fn lane_cells(&self, lane: usize) -> &MatmulExpansionIICells {
        &self.scalar[lane]
    }

    /// Extracts every lane's product matrix (mod `2^{2p−1}`) straight from
    /// the packed run: only the `2p−1` boundary accumulator words per
    /// `(j1, j2)` are read, then split per lane — no per-lane run
    /// materialisation.
    ///
    /// # Panics
    /// Panics if `run` came from a different structure (missing points).
    pub fn extract_products(&self, run: &BatchRun<MatmulLaneSignals>) -> Vec<Vec<Vec<u128>>> {
        let (u, p) = (self.u, self.p);
        let mut z = vec![vec![vec![0u128; u]; u]; self.lanes];
        let mut words: Vec<LaneWord> = Vec::with_capacity(2 * p - 1);
        let mut bits: Vec<Bit> = Vec::with_capacity(2 * p - 1);
        for j1 in 1..=u {
            for j2 in 1..=u {
                words.clear();
                for i in 1..=p {
                    words.push(self.signal_word(run, j1, j2, u, i, 1).s);
                }
                for i in p + 1..=2 * p - 1 {
                    words.push(self.signal_word(run, j1, j2, u, p, i - p + 1).s);
                }
                for (lane, z_lane) in z.iter_mut().enumerate() {
                    bits.clear();
                    bits.extend(words.iter().map(|&w| lane_bit(w, lane)));
                    z_lane[j1 - 1][j2 - 1] = bitlevel_arith::from_bits(&bits);
                }
            }
        }
        z
    }

    fn signal_word(
        &self,
        run: &BatchRun<MatmulLaneSignals>,
        j1: usize,
        j2: usize,
        j3: usize,
        i1: usize,
        i2: usize,
    ) -> MatmulLaneSignals {
        let q = IVec::from([j1 as i64, j2 as i64, j3 as i64, i1 as i64, i2 as i64]);
        run.outputs[&q]
    }
}

impl LaneCellSemantics for MatmulLaneCells {
    type Bundle = MatmulSignals;
    type Packed = MatmulLaneSignals;

    fn lanes(&self) -> usize {
        self.lanes
    }

    // The word-for-word port of `MatmulExpansionIICells::compute` (see
    // clocked.rs for the signal-by-signal commentary): scalar Bit ops become
    // LaneWord ops, `false` becomes the all-zero word.
    fn compute_lanes(&self, q: &IVec, inputs: &[Option<MatmulLaneSignals>]) -> MatmulLaneSignals {
        let (j1, j2, j3, i1, i2) = (
            q[0] as usize,
            q[1] as usize,
            q[2] as usize,
            q[3] as usize,
            q[4] as usize,
        );
        let p = self.p;

        let x = if i1 == 1 {
            match &inputs[0] {
                Some(b) => b.x,
                None => self.x_words[j1 - 1][j3 - 1][i2 - 1],
            }
        } else {
            inputs[3].as_ref().map_or(0, |b| b.x)
        };
        let y = if i2 == 1 {
            match &inputs[1] {
                Some(b) => b.y,
                None => self.y_words[j3 - 1][j2 - 1][i1 - 1],
            }
        } else {
            inputs[4].as_ref().map_or(0, |b| b.y)
        };

        let pp = x & y;
        let c_in = if i2 > 1 {
            inputs[4].as_ref().map_or(0, |b| b.c)
        } else {
            0
        };
        let s_in = if i1 == 1 {
            0
        } else if i2 == p {
            inputs[3].as_ref().map_or(0, |b| b.c)
        } else {
            inputs[5].as_ref().map_or(0, |b| b.s)
        };
        let on_boundary = i1 == p || i2 == 1;
        let inject = if on_boundary && j3 > 1 {
            inputs[2].as_ref().map_or(0, |b| b.s)
        } else {
            0
        };
        let cp_in = if i1 == p && i2 > 2 {
            inputs[6].as_ref().map_or(0, |b| b.cp)
        } else {
            0
        };

        let (s, c, cp) = if on_boundary && j3 > 1 {
            if i1 == p {
                wide_add_lanes(&[pp, c_in, s_in, inject, cp_in])
            } else {
                wide_add_lanes(&[pp, s_in, inject])
            }
        } else {
            let (s, c) = full_add_lanes(pp, c_in, s_in);
            (s, c, 0)
        };

        MatmulLaneSignals { x, y, s, c, cp }
    }

    fn compute_lane(
        &self,
        lane: usize,
        q: &IVec,
        inputs: &[Option<MatmulSignals>],
    ) -> MatmulSignals {
        SyncCellSemantics::compute(&self.scalar[lane], q, inputs)
    }

    fn extract_lane(&self, packed: &MatmulLaneSignals, lane: usize) -> MatmulSignals {
        MatmulSignals {
            x: lane_bit(packed.x, lane),
            y: lane_bit(packed.y, lane),
            s: lane_bit(packed.s, lane),
            c: lane_bit(packed.c, lane),
            cp: lane_bit(packed.cp, lane),
        }
    }
}

impl LanePackedBundle for MatmulLaneSignals {
    // Bit numbering matches `FaultableBundle for MatmulSignals`:
    // [x, y, s, c, cp].
    fn flip_bit_lanes(&mut self, bit: usize, mask: LaneWord) {
        match bit % 5 {
            0 => self.x = flip_lanes(self.x, mask),
            1 => self.y = flip_lanes(self.y, mask),
            2 => self.s = flip_lanes(self.s, mask),
            3 => self.c = flip_lanes(self.c, mask),
            _ => self.cp = flip_lanes(self.cp, mask),
        }
    }

    fn set_bit_lanes(&mut self, bit: usize, value: bool, mask: LaneWord) {
        match bit % 5 {
            0 => self.x = set_lanes(self.x, mask, value),
            1 => self.y = set_lanes(self.y, mask, value),
            2 => self.s = set_lanes(self.s, mask, value),
            3 => self.c = set_lanes(self.c, mask, value),
            _ => self.cp = set_lanes(self.cp, mask, value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::CompiledSchedule;
    use bitlevel_ir::{AlgorithmTriplet, BoxSet, Dependence, DependenceSet, Predicate};
    use bitlevel_mapping::PaperDesign;

    fn matmul_structure(u: i64, p: i64) -> AlgorithmTriplet {
        let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
        AlgorithmTriplet::new(
            j,
            DependenceSet::new(vec![
                Dependence::conditional([0, 1, 0, 0, 0], "x", Predicate::eq_const(3, 1)),
                Dependence::conditional([1, 0, 0, 0, 0], "y", Predicate::eq_const(4, 1)),
                Dependence::conditional(
                    [0, 0, 1, 0, 0],
                    "z",
                    Predicate::eq_const(3, p).or(&Predicate::eq_const(4, 1)),
                ),
                Dependence::conditional([0, 0, 0, 1, 0], "x", Predicate::ne_const(3, 1)),
                Dependence::conditional([0, 0, 0, 0, 1], "y,c", Predicate::ne_const(4, 1)),
                Dependence::uniform([0, 0, 0, 1, -1], "z"),
                Dependence::conditional([0, 0, 0, 0, 2], "c'", Predicate::eq_const(3, p)),
            ]),
            "bit-level matmul, Expansion II (composed order)",
        )
    }

    fn random_batch(
        u: usize,
        p: usize,
        n: usize,
        seed: u64,
    ) -> (Vec<Vec<Vec<u128>>>, Vec<Vec<Vec<u128>>>) {
        let cap = crate::BitMatmulArray::new(u, p).max_safe_entry();
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u128) % (cap + 1)
        };
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            xs.push((0..u).map(|_| (0..u).map(|_| next()).collect()).collect());
            ys.push((0..u).map(|_| (0..u).map(|_| next()).collect()).collect());
        }
        (xs, ys)
    }

    fn sched(u: usize, p: usize, design: PaperDesign) -> CompiledSchedule {
        let alg = matmul_structure(u as i64, p as i64);
        CompiledSchedule::compile(
            &alg,
            &design.mapping(p as i64),
            &design.interconnect(p as i64),
        )
    }

    #[test]
    fn every_lane_matches_the_scalar_engine_on_both_designs() {
        let (u, p, n) = (2usize, 3usize, 7usize);
        let (xs, ys) = random_batch(u, p, n, 0xBA7C_0001);
        for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
            let sched = sched(u, p, design);
            let cells = MatmulLaneCells::new(u, p, &xs, &ys);
            let batch = sched.execute_batch(&cells);
            assert!(batch.is_legal());
            assert_eq!(batch.lanes, n);
            for lane in 0..n {
                let scalar = sched.execute(cells.lane_cells(lane));
                let extracted = batch.extract_lane_run(&cells, lane);
                assert_eq!(extracted.cycles, scalar.cycles);
                assert_eq!(extracted.violations, scalar.violations);
                assert_eq!(extracted.peak_in_flight, scalar.peak_in_flight);
                assert_eq!(extracted.outputs, scalar.outputs, "lane {lane}");
            }
            // And the fast packed extraction gives every lane's true product.
            let z = cells.extract_products(&batch);
            for lane in 0..n {
                for i in 0..u {
                    for j in 0..u {
                        let want: u128 = (0..u).map(|k| xs[lane][i][k] * ys[lane][k][j]).sum();
                        assert_eq!(z[lane][i][j], want, "lane {lane} Z[{i}][{j}]");
                    }
                }
            }
        }
    }

    #[test]
    fn width_one_batch_is_bit_identical_to_execute() {
        let (u, p) = (2usize, 2usize);
        let (xs, ys) = random_batch(u, p, 1, 0xBA7C_0002);
        let sched = sched(u, p, PaperDesign::TimeOptimal);
        let cells = MatmulLaneCells::new(u, p, &xs, &ys);
        let batch = sched.execute_batch(&cells);
        let scalar = sched.execute(cells.lane_cells(0));
        let lane0 = batch.extract_lane_run(&cells, 0);
        assert_eq!(lane0.cycles, scalar.cycles);
        assert_eq!(lane0.violations, scalar.violations);
        assert_eq!(lane0.peak_in_flight, scalar.peak_in_flight);
        assert_eq!(lane0.outputs, scalar.outputs);
    }

    #[test]
    fn ragged_batches_mask_unused_lanes_to_zero() {
        let (u, p, n) = (2usize, 2usize, 5usize); // 5 is not a multiple of 64
        let (xs, ys) = random_batch(u, p, n, 0xBA7C_0003);
        let sched = sched(u, p, PaperDesign::TimeOptimal);
        let cells = MatmulLaneCells::new(u, p, &xs, &ys);
        let batch = sched.execute_batch(&cells);
        // Zero operands propagate zeros: every word's lanes >= n stay zero,
        // so a ragged batch cannot leak state across lane boundaries.
        for (q, w) in &batch.outputs {
            for (name, word) in [("x", w.x), ("y", w.y), ("s", w.s), ("c", w.c), ("cp", w.cp)] {
                assert_eq!(word >> n, 0, "unused lanes of {name} at {q} not zero");
            }
        }
    }

    #[test]
    fn lanes_are_independent_of_batch_composition() {
        // Lane l of a small batch == lane l of a larger batch sharing the
        // same first instances: no cross-lane coupling.
        let (u, p) = (2usize, 2usize);
        let (xs, ys) = random_batch(u, p, 9, 0xBA7C_0004);
        let sched = sched(u, p, PaperDesign::NearestNeighbour);
        let small = MatmulLaneCells::new(u, p, &xs[..4], &ys[..4]);
        let large = MatmulLaneCells::new(u, p, &xs, &ys);
        let run_small = sched.execute_batch(&small);
        let run_large = sched.execute_batch(&large);
        for lane in 0..4 {
            assert_eq!(
                run_small.extract_lane_run(&small, lane).outputs,
                run_large.extract_lane_run(&large, lane).outputs,
                "lane {lane} depends on unrelated lanes"
            );
        }
    }

    #[test]
    fn per_lane_fallback_agrees_with_bitwise_word_form() {
        // The generic Vec-packed fallback wraps any SyncCellSemantics; on
        // the matmul cells it must agree lane-for-lane with the dedicated
        // bitwise wordization.
        let (u, p, n) = (2usize, 2usize, 6usize);
        let (xs, ys) = random_batch(u, p, n, 0xBA7C_0005);
        let sched = sched(u, p, PaperDesign::TimeOptimal);
        let bitwise = MatmulLaneCells::new(u, p, &xs, &ys);
        let generic = PerLaneCells::new(
            (0..n)
                .map(|l| MatmulExpansionIICells::new(u, p, &xs[l], &ys[l]))
                .collect(),
        );
        let run_bitwise = sched.execute_batch(&bitwise);
        let run_generic = sched.execute_batch(&generic);
        assert_eq!(run_bitwise.lanes, run_generic.lanes);
        for lane in 0..n {
            assert_eq!(
                run_bitwise.extract_lane_run(&bitwise, lane).outputs,
                run_generic.extract_lane_run(&generic, lane).outputs,
                "lane {lane}"
            );
        }
    }

    #[test]
    fn batch_chunks_cover_every_instance() {
        let (u, p, n) = (2usize, 2usize, 10usize);
        let (xs, ys) = random_batch(u, p, n, 0xBA7C_0006);
        let sched = sched(u, p, PaperDesign::TimeOptimal);
        let width = 4usize;
        let chunks: Vec<MatmulLaneCells> = xs
            .chunks(width)
            .zip(ys.chunks(width))
            .map(|(xc, yc)| MatmulLaneCells::new(u, p, xc, yc))
            .collect();
        let runs = sched.execute_batch_chunks(&chunks);
        assert_eq!(runs.len(), 3); // 4 + 4 + 2 (ragged tail)
        let mut lane_total = 0usize;
        for (chunk, run) in chunks.iter().zip(&runs) {
            let z = chunk.extract_products(run);
            for (l, z_lane) in z.iter().enumerate() {
                let g = lane_total + l;
                for i in 0..u {
                    for j in 0..u {
                        let want: u128 = (0..u).map(|k| xs[g][i][k] * ys[g][k][j]).sum();
                        assert_eq!(z_lane[i][j], want);
                    }
                }
            }
            lane_total += run.lanes;
        }
        assert_eq!(lane_total, n);
    }

    /// A scalar injector flipping/forcing one signal bit at one point — the
    /// oracle the lane-masked word path must match lane for lane.
    struct PointFault {
        point: IVec,
        bit: usize,
        stuck: Option<bool>,
    }

    impl crate::fault::FaultInjector<MatmulSignals> for PointFault {
        fn pe_dead(&self, _processor: &IVec) -> bool {
            false
        }

        fn on_output(
            &self,
            _cycle: i64,
            point: &IVec,
            _processor: &IVec,
            bundle: &mut MatmulSignals,
        ) -> Vec<String> {
            if *point == self.point {
                match self.stuck {
                    Some(v) => bundle.set_bit(self.bit, v),
                    None => bundle.flip_bit(self.bit),
                }
                vec!["fault".into()]
            } else {
                Vec::new()
            }
        }

        fn on_transfer(&self, _cycle: i64, _point: &IVec, _column: usize) -> crate::TransferFault {
            crate::TransferFault::None
        }
    }

    #[test]
    fn lane_masked_faults_match_scalar_faulted_replays() {
        // Pack one distinct fault case per lane (plus a clean lane) into a
        // single word-wide walk; every lane must be bit-identical to the
        // scalar faulted engine running that lane's case alone.
        let (u, p) = (2usize, 2usize);
        let n = 6usize; // 5 faulted lanes + 1 clean lane
        let (xs, ys) = random_batch(u, p, n, 0xBA7C_0008);
        for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
            let sched = sched(u, p, design);
            let cells = MatmulLaneCells::new(u, p, &xs, &ys);
            // One case per lane: walk the index set for distinct points.
            let points: Vec<IVec> = sched
                .execute(cells.lane_cells(0))
                .outputs
                .keys()
                .take(5)
                .cloned()
                .collect();
            let mut masks = LaneFaultMasks::new();
            for (lane, point) in points.iter().enumerate() {
                masks.flip(point.clone(), lane % 5, lane);
            }
            let faulted = LaneFaultedCells::new(&cells, &masks);
            let run = sched.execute_batch(&faulted);
            assert!(run.is_legal());
            for (lane, point) in points.iter().enumerate() {
                let injector = PointFault {
                    point: point.clone(),
                    bit: lane % 5,
                    stuck: None,
                };
                let scalar = sched.execute_faulted(
                    &LaneView::new(&cells, lane),
                    &mut crate::NullSink,
                    &injector,
                );
                let extracted = run.extract_lane_run(&faulted, lane);
                assert_eq!(extracted.outputs, scalar.outputs, "{design:?} lane {lane}");
            }
            // The clean lane matches the faultless scalar engine.
            let clean = sched.execute(cells.lane_cells(5));
            assert_eq!(run.extract_lane_run(&faulted, 5).outputs, clean.outputs);
        }
    }

    #[test]
    fn lane_masked_stuck_at_matches_scalar_and_double_flip_cancels() {
        let (u, p) = (2usize, 2usize);
        let (xs, ys) = random_batch(u, p, 2, 0xBA7C_0009);
        let sched = sched(u, p, PaperDesign::TimeOptimal);
        let cells = MatmulLaneCells::new(u, p, &xs, &ys);
        let point = IVec::from([1, 1, 1, 1, 1]);

        let mut masks = LaneFaultMasks::new();
        masks.stuck(point.clone(), 2, true, 0);
        // Lane 1: two flips of the same wire cancel — a clean lane.
        masks.flip(point.clone(), 2, 1);
        masks.flip(point.clone(), 2, 1);
        assert!(!masks.is_empty());

        let faulted = LaneFaultedCells::new(&cells, &masks);
        let run = sched.execute_batch(&faulted);
        let injector = PointFault {
            point,
            bit: 2,
            stuck: Some(true),
        };
        let scalar =
            sched.execute_faulted(&LaneView::new(&cells, 0), &mut crate::NullSink, &injector);
        assert_eq!(run.extract_lane_run(&faulted, 0).outputs, scalar.outputs);
        let clean = sched.execute(cells.lane_cells(1));
        assert_eq!(run.extract_lane_run(&faulted, 1).outputs, clean.outputs);
    }

    #[test]
    fn empty_lane_fault_masks_are_inert() {
        let (u, p) = (2usize, 2usize);
        let (xs, ys) = random_batch(u, p, 3, 0xBA7C_000A);
        let sched = sched(u, p, PaperDesign::TimeOptimal);
        let cells = MatmulLaneCells::new(u, p, &xs, &ys);
        let masks = LaneFaultMasks::new();
        assert!(masks.is_empty());
        let faulted = LaneFaultedCells::new(&cells, &masks);
        let clean = sched.execute_batch(&cells);
        let wrapped = sched.execute_batch(&faulted);
        assert_eq!(clean.outputs, wrapped.outputs);
    }

    #[test]
    #[should_panic(expected = "batch must hold")]
    fn empty_batches_are_rejected() {
        let _ = MatmulLaneCells::new(2, 2, &[], &[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lane_view_checks_bounds() {
        let (xs, ys) = random_batch(2, 2, 2, 0xBA7C_0007);
        let cells = MatmulLaneCells::new(2, 2, &xs, &ys);
        let _ = LaneView::new(&cells, 2);
    }
}
