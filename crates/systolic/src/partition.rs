//! LSGP partitioned execution: a fixed physical worker pool over the
//! unbounded virtual PE array.
//!
//! Every design the pipeline produces allocates the paper's full virtual
//! processor array — `u²p²` PEs for the Expansion II matmul — which no real
//! machine has at the scales the roadmap targets. This module clusters the
//! virtual PEs of a [`CompiledSchedule`] into at most `k` **shards**
//! (locally-sequential-globally-parallel, LSGP): each shard is owned by one
//! physical worker that walks its share of every cycle slice sequentially,
//! with a barrier per cycle slice and per-shard token queues for the values
//! produced inside the slice.
//!
//! * **Shard assignment** — virtual PEs are ordered lexicographically by
//!   their `S·q̄` coordinates and split into `k` contiguous clusters of
//!   near-equal *load* (fired points, not PE count), so spatially adjacent
//!   PEs share a worker and most dependence traffic stays intra-shard.
//! * **Cycle-sliced barriers** — the partitioner re-indexes the existing CSR
//!   fire list per `(cycle, shard)`. Within a cycle each worker fires its
//!   sub-slice locally sequentially against the *settled* arena (causality:
//!   every producer fired in an earlier slice), queues its products, and the
//!   barrier drains all queues into the shared arena before bookkeeping.
//! * **Bit identity** — the value phase only re-orders *independent*
//!   computations (the schedule must be causal — [`PartitionError::NotCausal`]
//!   otherwise); the sequential bookkeeping runs over the **original** fire
//!   order, so outputs, violations (same order), cycle counts and
//!   `peak_in_flight` are bit-identical to [`CompiledSchedule::execute`] and
//!   the interpreted oracle.
//! * **Physical cost model** — [`PartitionStats`] carries the LSGP makespan
//!   `Σ_c max_w fires(c, w)` (what this shard assignment costs) and the
//!   balance lower bound `Σ_c ⌈fires(c)/k⌉` (what a perfectly balanced
//!   assignment would cost — provably non-increasing in `k`), the axes the
//!   explorer's `max_physical_pes` budget exposes on the Pareto frontier.
//!
//! Fault injection deliberately bypasses the shard walk: a live injector
//! must observe arena mutations in the interpreted engine's sequential
//! order, so [`PartitionedSchedule::execute_faulted`] delegates to the
//! compiled engine's sequential faulted path — same contract, same results.

use crate::batch::LaneArena;
use crate::batch::{BatchRun, FaultedBatchRun, LaneCellSemantics};
use crate::clocked::{ClockedRun, SyncCellSemantics};
use crate::compiled::{CompiledSchedule, SlotScratch, NO_SLOT, PAR_THRESHOLD};
use crate::fault::{FaultInjector, NoFaults};
use crate::mapped::MappedRunReport;
use crate::trace::{NullSink, TraceSink};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Why a [`CompiledSchedule`] cannot be partitioned onto a physical worker
/// pool. Both cases are recoverable — callers (the `DesignFlow` pipeline)
/// fall back to the un-partitioned compiled engine and record the reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionError {
    /// A zero-worker pool executes nothing.
    ZeroWorkers,
    /// The schedule is not causal (some exercised column has `Π·d̄ ≤ 0`):
    /// same-cycle points may depend on each other, so the per-shard local
    /// walks cannot be reordered against the interpreted firing order.
    NotCausal,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::ZeroWorkers => {
                write!(f, "cannot partition onto zero workers")
            }
            PartitionError::NotCausal => {
                write!(
                    f,
                    "schedule is not causal: same-cycle points may be dependent, \
                     shard-local firing order would diverge from the oracle"
                )
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// Shape and cost summary of one LSGP partition, reported by the pipeline
/// and the `--sweep partition` bench.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionStats {
    /// Worker budget the caller asked for.
    pub workers_requested: usize,
    /// Workers actually used (`min(requested, virtual PEs)` — never 0).
    pub workers: usize,
    /// Virtual PEs of the mapped design (`|S·J|`).
    pub virtual_pes: usize,
    /// Largest number of virtual PEs folded into one shard.
    pub max_shard_pes: usize,
    /// Fired index points owned by each shard.
    pub shard_points: Vec<u64>,
    /// Dependence tokens crossing a shard boundary (need a queue transfer).
    pub cross_shard_tokens: u64,
    /// Dependence tokens staying inside one shard.
    pub intra_shard_tokens: u64,
    /// LSGP makespan of *this* assignment: `Σ_c max_w fires(c, w)` —
    /// each cycle slice costs its most loaded worker.
    pub makespan: u64,
    /// Balance lower bound `Σ_c ⌈fires(c)/workers⌉`: the makespan of a
    /// perfectly load-balanced assignment, non-increasing in `workers`.
    pub balanced_makespan: u64,
}

/// A [`CompiledSchedule`] clustered onto a fixed pool of `k` physical
/// workers. Build with [`PartitionedSchedule::try_new`]; execution entry
/// points mirror the compiled engine's and stay bit-identical to it.
#[derive(Debug, Clone)]
pub struct PartitionedSchedule {
    sched: Arc<CompiledSchedule>,
    workers: usize,
    /// Shard id per dense processor id.
    shard_of_proc: Vec<u32>,
    /// Fire list re-indexed per `(cycle, shard)`: cycle `k`, shard `w` fires
    /// `shard_fire_order[shard_offsets[k·workers + w] .. shard_offsets[k·workers + w + 1]]`,
    /// preserving the original slot order inside each sub-slice.
    shard_fire_order: Vec<u32>,
    shard_offsets: Vec<usize>,
    stats: PartitionStats,
}

impl PartitionedSchedule {
    /// Clusters `sched`'s virtual PE array onto at most `workers` physical
    /// workers: PEs sorted lexicographically by coordinates, split into
    /// contiguous shards of near-equal fired-point load.
    pub fn try_new(
        sched: Arc<CompiledSchedule>,
        workers: usize,
    ) -> Result<PartitionedSchedule, PartitionError> {
        if workers == 0 {
            return Err(PartitionError::ZeroWorkers);
        }
        if !sched.causal {
            return Err(PartitionError::NotCausal);
        }
        let virtual_pes = sched.proc_coords.len();
        let k = workers.min(virtual_pes.max(1));

        // Load per virtual PE = fired points it owns.
        let mut load = vec![0u64; virtual_pes];
        for &p in &sched.proc {
            load[p as usize] += 1;
        }
        let total: u64 = load.iter().sum();

        // Contiguous clusters along the lexicographic PE order: the PE whose
        // cumulative load *before* it is `prefix` lands in shard
        // ⌊prefix·k/total⌋ — near-equal load, spatial locality preserved.
        let mut order: Vec<u32> = (0..virtual_pes as u32).collect();
        order.sort_by(|&a, &b| {
            sched.proc_coords[a as usize]
                .0
                .cmp(&sched.proc_coords[b as usize].0)
        });
        let mut shard_of_proc = vec![0u32; virtual_pes];
        let mut prefix = 0u64;
        for &p in &order {
            let w = if total == 0 {
                0
            } else {
                (((prefix as u128) * k as u128) / total as u128) as usize
            };
            shard_of_proc[p as usize] = w.min(k - 1) as u32;
            prefix += load[p as usize];
        }

        let mut shard_pes = vec![0usize; k];
        for &w in &shard_of_proc {
            shard_pes[w as usize] += 1;
        }
        let mut shard_points = vec![0u64; k];

        // Re-index the CSR fire list per (cycle, shard), preserving slot
        // order inside each sub-slice, and price the assignment.
        let n_cycles = sched.cycle_values.len();
        let mut shard_fire_order = Vec::with_capacity(sched.fire_order.len());
        let mut shard_offsets = Vec::with_capacity(n_cycles * k + 1);
        shard_offsets.push(0);
        let mut makespan = 0u64;
        let mut balanced_makespan = 0u64;
        for c in 0..n_cycles {
            let slice = &sched.fire_order[sched.cycle_offsets[c]..sched.cycle_offsets[c + 1]];
            let mut widest = 0u64;
            for w in 0..k as u32 {
                let before = shard_fire_order.len();
                for &s in slice {
                    if shard_of_proc[sched.proc[s as usize] as usize] == w {
                        shard_fire_order.push(s);
                    }
                }
                let fires = (shard_fire_order.len() - before) as u64;
                shard_points[w as usize] += fires;
                widest = widest.max(fires);
                shard_offsets.push(shard_fire_order.len());
            }
            makespan += widest;
            balanced_makespan += (slice.len() as u64).div_ceil(k as u64);
        }

        // Token locality: producer shard vs consumer shard per active column.
        let mut cross_shard_tokens = 0u64;
        let mut intra_shard_tokens = 0u64;
        for s in 0..sched.n_points {
            let mask = sched.consume_mask[s];
            let dst = shard_of_proc[sched.proc[s] as usize];
            for i in 0..sched.m {
                if mask & (1u64 << i) == 0 {
                    continue;
                }
                let src = sched.producers[s * sched.m + i];
                if src == NO_SLOT {
                    continue;
                }
                if shard_of_proc[sched.proc[src as usize] as usize] == dst {
                    intra_shard_tokens += 1;
                } else {
                    cross_shard_tokens += 1;
                }
            }
        }

        let stats = PartitionStats {
            workers_requested: workers,
            workers: k,
            virtual_pes,
            max_shard_pes: shard_pes.iter().copied().max().unwrap_or(0),
            shard_points,
            cross_shard_tokens,
            intra_shard_tokens,
            makespan,
            balanced_makespan,
        };
        Ok(PartitionedSchedule {
            sched,
            workers: k,
            shard_of_proc,
            shard_fire_order,
            shard_offsets,
            stats,
        })
    }

    /// Workers actually used (`min(requested, virtual PEs)`).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Shape and cost summary of this partition.
    pub fn stats(&self) -> &PartitionStats {
        &self.stats
    }

    /// The underlying compiled schedule.
    pub fn schedule(&self) -> &Arc<CompiledSchedule> {
        &self.sched
    }

    /// Shard owning dense processor id `p`.
    pub fn shard_of(&self, p: usize) -> usize {
        self.shard_of_proc[p] as usize
    }

    /// The `(cycle, shard)` sub-slice of the re-indexed fire list.
    #[inline]
    fn shard_slice(&self, cycle_idx: usize, w: usize) -> &[u32] {
        let base = cycle_idx * self.workers + w;
        &self.shard_fire_order[self.shard_offsets[base]..self.shard_offsets[base + 1]]
    }

    /// Executes the partitioned schedule with value-carrying tokens —
    /// bit-identical to [`CompiledSchedule::execute`] and the interpreted
    /// oracle (outputs, violations in the same order, `peak_in_flight`).
    pub fn execute<S: SyncCellSemantics>(&self, semantics: &S) -> ClockedRun<S::Bundle> {
        self.execute_traced(semantics, &mut NullSink)
    }

    /// [`PartitionedSchedule::execute`] with a [`TraceSink`]; the emitted
    /// stream is identical to [`CompiledSchedule::execute_traced`]'s because
    /// all events come out of the sequential bookkeeping phase.
    pub fn execute_traced<S: SyncCellSemantics, K: TraceSink>(
        &self,
        semantics: &S,
        sink: &mut K,
    ) -> ClockedRun<S::Bundle> {
        let sched = &*self.sched;
        sched.emit_clocked_route_events(sink);
        let mut arena: Vec<Option<S::Bundle>> = vec![None; sched.n_points];
        let mut violations = Vec::new();
        let mut in_flight = vec![0u64; sched.m];
        let mut peak_in_flight = vec![0u64; sched.m];
        let mut fired = vec![false; sched.proc_coords.len()];
        let mut scratch: SlotScratch<S::Bundle> = SlotScratch::default();

        for k in 0..sched.cycle_values.len() {
            let c = sched.cycle_values[k];
            let slice = &sched.fire_order[sched.cycle_offsets[k]..sched.cycle_offsets[k + 1]];

            // Value phase: one rayon task per shard, each walking its
            // sub-slice locally sequentially against the settled arena and
            // queueing its products; the barrier drains every queue before
            // bookkeeping. Causality (enforced at construction) guarantees
            // no same-cycle reads, so the reordering is unobservable.
            if self.workers > 1 && slice.len() >= PAR_THRESHOLD {
                let queues: Vec<Vec<(u32, S::Bundle)>> = {
                    let arena_ref: &[Option<S::Bundle>] = &arena;
                    (0..self.workers)
                        .into_par_iter()
                        .map(|w| {
                            let mut sc = SlotScratch::default();
                            self.shard_slice(k, w)
                                .iter()
                                .map(|&s| {
                                    (
                                        s,
                                        sched.compute_slot(
                                            semantics, s as usize, arena_ref, &mut sc,
                                        ),
                                    )
                                })
                                .collect()
                        })
                        .collect()
                };
                for queue in queues {
                    for (s, bundle) in queue {
                        arena[s as usize] = Some(bundle);
                    }
                }
            } else {
                for &s in slice {
                    let bundle = sched.compute_slot(semantics, s as usize, &arena, &mut scratch);
                    arena[s as usize] = Some(bundle);
                }
            }

            // Bookkeeping walks the ORIGINAL fire order — the shard layout
            // never leaks into violations, counters or events.
            sched.cycle_bookkeeping(
                c,
                slice,
                &arena,
                sink,
                &NoFaults,
                &mut violations,
                &mut in_flight,
                &mut peak_in_flight,
                &mut fired,
            );
        }

        let cycles = match (sched.cycle_values.first(), sched.cycle_values.last()) {
            (Some(a), Some(b)) => b - a + 1,
            _ => 0,
        };
        let mut outputs = std::collections::HashMap::with_capacity(sched.n_points);
        for (s, bundle) in arena.into_iter().enumerate() {
            outputs.insert(
                sched.point(s),
                bundle.expect("every slot fires exactly once"),
            );
        }
        ClockedRun {
            cycles,
            outputs,
            violations,
            peak_in_flight,
        }
    }

    /// [`PartitionedSchedule::execute`] under a [`FaultInjector`]. A live
    /// injector must observe arena mutations in the interpreted engine's
    /// sequential order — exactly what the compiled engine's faulted path
    /// already replays — so this delegates to
    /// [`CompiledSchedule::execute_faulted`] by design; with [`NoFaults`]
    /// it runs the shard walk.
    pub fn execute_faulted<S, K, F>(
        &self,
        semantics: &S,
        sink: &mut K,
        faults: &F,
    ) -> ClockedRun<S::Bundle>
    where
        S: SyncCellSemantics,
        K: TraceSink,
        F: FaultInjector<S::Bundle>,
    {
        if F::ENABLED {
            self.sched.execute_faulted(semantics, sink, faults)
        } else {
            self.execute_traced(semantics, sink)
        }
    }

    /// Lane-packed batch walk over the shard layout: up to 64 problem
    /// instances per schedule walk, each cycle slice split across the worker
    /// pool. Bit-identical to [`CompiledSchedule::execute_batch`].
    pub fn execute_batch<L: LaneCellSemantics>(&self, lanes: &L) -> BatchRun<L::Packed> {
        self.execute_batch_traced(lanes, &mut NullSink)
    }

    /// [`PartitionedSchedule::execute_batch`] with a [`TraceSink`].
    pub fn execute_batch_traced<L, K>(&self, lanes: &L, sink: &mut K) -> BatchRun<L::Packed>
    where
        L: LaneCellSemantics,
        K: TraceSink,
    {
        let sched = &*self.sched;
        sched.emit_clocked_route_events(sink);
        let mut arena: LaneArena<L::Packed> = LaneArena::new(sched.n_points);
        let mut violations = Vec::new();
        let mut in_flight = vec![0u64; sched.m];
        let mut peak_in_flight = vec![0u64; sched.m];
        let mut fired = vec![false; sched.proc_coords.len()];
        let mut scratch: SlotScratch<L::Packed> = SlotScratch::default();

        for k in 0..sched.cycle_values.len() {
            let c = sched.cycle_values[k];
            let slice = &sched.fire_order[sched.cycle_offsets[k]..sched.cycle_offsets[k + 1]];

            if self.workers > 1 && slice.len() >= PAR_THRESHOLD {
                let queues: Vec<Vec<(u32, L::Packed)>> = {
                    let slots = arena.slots();
                    (0..self.workers)
                        .into_par_iter()
                        .map(|w| {
                            let mut sc = SlotScratch::default();
                            self.shard_slice(k, w)
                                .iter()
                                .map(|&s| {
                                    (
                                        s,
                                        sched.compute_slot_lanes(lanes, s as usize, slots, &mut sc),
                                    )
                                })
                                .collect()
                        })
                        .collect()
                };
                for queue in queues {
                    for (s, packed) in queue {
                        arena.set(s as usize, packed);
                    }
                }
            } else {
                for &s in slice {
                    let packed =
                        sched.compute_slot_lanes(lanes, s as usize, arena.slots(), &mut scratch);
                    arena.set(s as usize, packed);
                }
            }

            sched.cycle_bookkeeping(
                c,
                slice,
                arena.slots(),
                sink,
                &NoFaults,
                &mut violations,
                &mut in_flight,
                &mut peak_in_flight,
                &mut fired,
            );
        }

        let cycles = match (sched.cycle_values.first(), sched.cycle_values.last()) {
            (Some(a), Some(b)) => b - a + 1,
            _ => 0,
        };
        let mut outputs = std::collections::HashMap::with_capacity(sched.n_points);
        for (s, packed) in arena.into_slots().into_iter().enumerate() {
            outputs.insert(
                sched.point(s),
                packed.expect("every slot fires exactly once"),
            );
        }
        BatchRun {
            cycles,
            lanes: lanes.lanes(),
            outputs,
            violations,
            peak_in_flight,
        }
    }

    /// Batch walk under a single-lane [`FaultInjector`] — delegates to
    /// [`CompiledSchedule::execute_batch_faulted`] (clean word-wide batch +
    /// scalar faulted replay of the targeted lane), the established faulted
    /// contract for lane-packed execution.
    pub fn execute_batch_faulted<L, K, F>(
        &self,
        lanes: &L,
        sink: &mut K,
        faults: &F,
        fault_lane: usize,
    ) -> FaultedBatchRun<L::Packed, L::Bundle>
    where
        L: LaneCellSemantics,
        K: TraceSink,
        F: FaultInjector<L::Bundle>,
    {
        self.sched
            .execute_batch_faulted(lanes, sink, faults, fault_lane)
    }

    /// Timing-only mapped report — value-independent, so it delegates to
    /// [`CompiledSchedule::mapped_report_traced`] unchanged.
    pub fn mapped_report_traced<K: TraceSink>(&self, sink: &mut K) -> MappedRunReport {
        self.sched.mapped_report_traced(sink)
    }

    /// Timing-only mapped report under a fault injector — delegates to
    /// [`CompiledSchedule::mapped_report_faulted`].
    pub fn mapped_report_faulted<K: TraceSink, F: FaultInjector<()>>(
        &self,
        sink: &mut K,
        faults: &F,
    ) -> MappedRunReport {
        self.sched.mapped_report_faulted(sink, faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::MatmulLaneCells;
    use crate::clocked::{run_clocked, MatmulExpansionIICells};
    use bitlevel_ir::{AlgorithmTriplet, BoxSet, Dependence, DependenceSet, Predicate};
    use bitlevel_mapping::PaperDesign;

    fn matmul_structure(u: i64, p: i64) -> AlgorithmTriplet {
        let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
        AlgorithmTriplet::new(
            j,
            DependenceSet::new(vec![
                Dependence::conditional([0, 1, 0, 0, 0], "x", Predicate::eq_const(3, 1)),
                Dependence::conditional([1, 0, 0, 0, 0], "y", Predicate::eq_const(4, 1)),
                Dependence::conditional(
                    [0, 0, 1, 0, 0],
                    "z",
                    Predicate::eq_const(3, p).or(&Predicate::eq_const(4, 1)),
                ),
                Dependence::conditional([0, 0, 0, 1, 0], "x", Predicate::ne_const(3, 1)),
                Dependence::conditional([0, 0, 0, 0, 1], "y,c", Predicate::ne_const(4, 1)),
                Dependence::uniform([0, 0, 0, 1, -1], "z"),
                Dependence::conditional([0, 0, 0, 0, 2], "c'", Predicate::eq_const(3, p)),
            ]),
            "bit-level matmul, Expansion II (composed order)",
        )
    }

    fn mats(u: usize, p: usize, salt: u128) -> (Vec<Vec<u128>>, Vec<Vec<u128>>) {
        let m = crate::BitMatmulArray::new(u, p).max_safe_entry();
        let x = (0..u)
            .map(|i| {
                (0..u)
                    .map(|j| ((3 * i + 5 * j) as u128 + salt + 1) % (m + 1))
                    .collect()
            })
            .collect();
        let y = (0..u)
            .map(|i| {
                (0..u)
                    .map(|j| ((7 * i + 2 * j) as u128 + salt + 2) % (m + 1))
                    .collect()
            })
            .collect();
        (x, y)
    }

    fn matmul_sched(u: usize, p: usize, design: PaperDesign) -> Arc<CompiledSchedule> {
        let alg = matmul_structure(u as i64, p as i64);
        let t = design.mapping(p as i64);
        let ic = design.interconnect(p as i64);
        Arc::new(CompiledSchedule::compile(&alg, &t, &ic))
    }

    #[test]
    fn zero_workers_rejected() {
        let sched = matmul_sched(2, 2, PaperDesign::TimeOptimal);
        assert_eq!(
            PartitionedSchedule::try_new(sched, 0).unwrap_err(),
            PartitionError::ZeroWorkers
        );
    }

    #[test]
    fn non_causal_schedule_rejected() {
        use bitlevel_linalg::IVec;
        use bitlevel_mapping::MappingMatrix;
        let alg = matmul_structure(2, 2);
        let t = MappingMatrix::new(
            PaperDesign::TimeOptimal.mapping(2).space.clone(),
            IVec::from([1, 1, 1, 0, 0]),
        );
        let ic = PaperDesign::TimeOptimal.interconnect(2);
        let sched = Arc::new(CompiledSchedule::compile(&alg, &t, &ic));
        assert!(!sched.is_causal());
        assert_eq!(
            PartitionedSchedule::try_new(sched, 4).unwrap_err(),
            PartitionError::NotCausal
        );
    }

    #[test]
    fn workers_clamped_to_virtual_pes() {
        let sched = matmul_sched(2, 2, PaperDesign::TimeOptimal);
        let virtual_pes = sched.n_processors();
        let part = PartitionedSchedule::try_new(sched, virtual_pes + 100).unwrap();
        assert_eq!(part.workers(), virtual_pes);
        assert_eq!(part.stats().workers_requested, virtual_pes + 100);
    }

    #[test]
    fn shards_cover_all_pes_and_points() {
        let sched = matmul_sched(3, 2, PaperDesign::TimeOptimal);
        let part = PartitionedSchedule::try_new(Arc::clone(&sched), 4).unwrap();
        let stats = part.stats();
        assert_eq!(stats.workers, 4);
        assert_eq!(
            stats.shard_points.iter().sum::<u64>() as usize,
            sched.n_points()
        );
        assert!(stats.cross_shard_tokens + stats.intra_shard_tokens > 0);
        // The balance lower bound never exceeds this assignment's makespan,
        // and the sequential extreme equals the total point count.
        assert!(stats.balanced_makespan <= stats.makespan);
        let seq = PartitionedSchedule::try_new(Arc::clone(&sched), 1).unwrap();
        assert_eq!(seq.stats().makespan as usize, sched.n_points());
    }

    #[test]
    fn balanced_makespan_non_increasing_in_workers() {
        let sched = matmul_sched(3, 3, PaperDesign::TimeOptimal);
        let mut prev = u64::MAX;
        for k in [1usize, 2, 4, 8, 16] {
            let part = PartitionedSchedule::try_new(Arc::clone(&sched), k).unwrap();
            let b = part.stats().balanced_makespan;
            assert!(
                b <= prev,
                "balanced makespan must not grow with workers: {b} > {prev} at k={k}"
            );
            prev = b;
        }
    }

    #[test]
    fn partitioned_matches_interpreted_oracle() {
        for (u, p) in [(2usize, 2usize), (3, 2)] {
            for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
                let alg = matmul_structure(u as i64, p as i64);
                let t = design.mapping(p as i64);
                let ic = design.interconnect(p as i64);
                let sched = Arc::new(CompiledSchedule::compile(&alg, &t, &ic));
                let (x, y) = mats(u, p, 3);
                let mut oracle_cells = MatmulExpansionIICells::new(u, p, &x, &y);
                let oracle = run_clocked(&alg, &t, &ic, &mut oracle_cells);
                let cells = MatmulExpansionIICells::new(u, p, &x, &y);
                for k in [1usize, 3, 8] {
                    let part = PartitionedSchedule::try_new(Arc::clone(&sched), k).unwrap();
                    let run = part.execute(&cells);
                    assert_eq!(run.outputs, oracle.outputs, "k={k} {design:?}");
                    assert_eq!(run.violations, oracle.violations, "k={k} {design:?}");
                    assert_eq!(run.cycles, oracle.cycles, "k={k} {design:?}");
                    assert_eq!(
                        run.peak_in_flight, oracle.peak_in_flight,
                        "k={k} {design:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn partitioned_batch_matches_compiled_batch() {
        let (u, p) = (2usize, 2usize);
        let sched = matmul_sched(u, p, PaperDesign::TimeOptimal);
        let width = 5;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..width {
            let (x, y) = mats(u, p, i as u128);
            xs.push(x);
            ys.push(y);
        }
        let lanes = MatmulLaneCells::new(u, p, &xs, &ys);
        let baseline = sched.execute_batch(&lanes);
        for k in [1usize, 2, 7] {
            let part = PartitionedSchedule::try_new(Arc::clone(&sched), k).unwrap();
            let run = part.execute_batch(&lanes);
            assert_eq!(run.outputs, baseline.outputs, "k={k}");
            assert_eq!(run.violations, baseline.violations, "k={k}");
            assert_eq!(run.cycles, baseline.cycles, "k={k}");
        }
    }
}
