//! Structured tracing/metrics shared by all three simulation engines.
//!
//! The paper's architecture claims are about *measured* behaviour — execution
//! time (4.5)/(4.8), PE counts, link usage — and this module makes the
//! measurements observable per cycle instead of only as end-of-run
//! aggregates. Every engine ([`crate::clocked::run_clocked_traced`],
//! [`crate::mapped::simulate_mapped_traced`],
//! [`crate::compiled::CompiledSchedule::execute_traced`]) emits
//! [`TraceEvent`]s into a caller-chosen [`TraceSink`]:
//!
//! * [`NullSink`] — the default, statically zero-overhead: its
//!   `ENABLED = false` associated constant lets the emission guards
//!   monomorphise away, so the untraced entry points cost nothing;
//! * [`RecordingSink`] — in-memory capture with incrementally maintained
//!   [`TraceRollup`] counters (per-PE fires, wavefront width per cycle,
//!   per-column token counts and in-flight high-water marks, per-link
//!   occupancy) plus Chrome-trace/JSON ([`RecordingSink::to_chrome_trace`])
//!   and CSV ([`RecordingSink::to_csv`]) exporters.
//!
//! The two clocked engines emit **identical event streams** for identical
//! `(alg, T, P)` inputs — the compiled backend reconstructs events during its
//! sequential bookkeeping replay, leaving the rayon value slices untouched —
//! which `tests/engine_agreement.rs` pins down.

use bitlevel_linalg::IVec;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What a [`RecordingSink`] retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceConfig {
    /// Keep the full per-event list (needed for the Chrome-trace/CSV
    /// exporters and event-stream equality tests). [`TraceRollup`] counters
    /// are maintained either way.
    pub events: bool,
    /// Optional cap on the retained event list. Once the list is full,
    /// further events still update the rollup but are dropped from the list
    /// and counted in [`TraceRollup::dropped_events`] — long fault campaigns
    /// cannot grow memory unboundedly.
    pub max_events: Option<usize>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            events: true,
            max_events: None,
        }
    }
}

/// One observable simulation event.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[serde(tag = "kind")]
pub enum TraceEvent {
    /// A dependence column was routed at pre-route/compile time.
    ColumnRoute {
        /// Dependence column index.
        column: usize,
        /// Hop count of the chosen route.
        hops: i64,
        /// Per-primitive usage counts (by column index of `P`).
        usage: IVec,
    },
    /// A dependence column admits no route on this machine.
    ColumnUnroutable {
        /// Dependence column index.
        column: usize,
    },
    /// An index point fired on its processor.
    PointFired {
        /// Scheduled cycle.
        cycle: i64,
        /// The index point.
        point: IVec,
        /// Processor coordinates `S·q̄`.
        processor: IVec,
    },
    /// A token left its producer along a dependence column.
    TokenLaunched {
        /// Launch cycle (= the producer's firing cycle).
        cycle: i64,
        /// Dependence column index.
        column: usize,
        /// Producing index point.
        from: IVec,
    },
    /// A token was consumed by a firing point.
    TokenConsumed {
        /// Consumption cycle.
        cycle: i64,
        /// Dependence column index.
        column: usize,
        /// Consuming index point.
        at: IVec,
        /// Cycles the token spent in flight (consumer cycle − producer cycle).
        slack: i64,
    },
    /// A timing/routing/conflict violation, rendered.
    Violation {
        /// Cycle at which the violation was observed.
        cycle: i64,
        /// Human-readable description (the engine's `ClockedViolation`).
        description: String,
    },
    /// In-flight token count on one column's wire set after a launch.
    BufferOccupancy {
        /// Cycle of the launch.
        cycle: i64,
        /// Dependence column index.
        column: usize,
        /// Tokens currently in flight on this column.
        in_flight: u64,
    },
    /// A fault injector perturbed the run at this point.
    FaultInjected {
        /// Cycle of the injection.
        cycle: i64,
        /// The index point whose output or input was perturbed.
        point: IVec,
        /// Processor coordinates of the perturbed point.
        processor: IVec,
        /// The dependence column for transfer faults; `None` for
        /// output-side faults (flips, stuck-at, dead PE).
        column: Option<usize>,
        /// Human-readable fault kind (e.g. `transient_flip bit=s`).
        kind: String,
    },
    /// An engine substituted another backend for the requested one.
    BackendFallback {
        /// The backend that could not run.
        from: String,
        /// The backend that ran instead.
        to: String,
        /// Why (e.g. a rendered `CompileError`).
        reason: String,
    },
    /// The compile cache answered a schedule lookup.
    CacheQuery {
        /// Hex rendering of the content-hash cache key.
        key: String,
        /// `memory-hit`, `disk-hit`, or `miss-compiled`.
        outcome: String,
    },
    /// A requested batch width was clamped into the legal lane range.
    BatchWidthClamped {
        /// The width the caller asked for.
        requested: usize,
        /// The width actually used (`1..=MAX_LANES`).
        used: usize,
    },
}

impl TraceEvent {
    /// The cycle this event is anchored to, when it has one.
    pub fn cycle(&self) -> Option<i64> {
        match self {
            TraceEvent::PointFired { cycle, .. }
            | TraceEvent::TokenLaunched { cycle, .. }
            | TraceEvent::TokenConsumed { cycle, .. }
            | TraceEvent::Violation { cycle, .. }
            | TraceEvent::BufferOccupancy { cycle, .. }
            | TraceEvent::FaultInjected { cycle, .. } => Some(*cycle),
            _ => None,
        }
    }
}

/// Receiver of simulation events.
///
/// Engines guard every emission with `if K::ENABLED { sink.record(..) }`, so
/// a sink with `ENABLED = false` (i.e. [`NullSink`]) compiles to the exact
/// untraced hot loop — the criterion benches hold the compiled engine to
/// that.
pub trait TraceSink {
    /// Whether this sink observes anything at all. Defaults to `true`.
    const ENABLED: bool = true;

    /// Receives one event.
    fn record(&mut self, event: TraceEvent);
}

/// The no-op sink: statically disabled, zero overhead.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

/// Rollup counters maintained incrementally by a [`RecordingSink`].
#[derive(Debug, Clone, Default)]
pub struct TraceRollup {
    /// Total points fired.
    pub fires: u64,
    /// Fires per processor (PE utilisation numerators).
    pub pe_fires: BTreeMap<IVec, u64>,
    /// Wavefront width (points fired) per cycle.
    pub wavefront: BTreeMap<i64, u64>,
    /// Tokens launched per dependence column.
    pub launched: Vec<u64>,
    /// Tokens consumed per dependence column.
    pub consumed: Vec<u64>,
    /// In-flight high-water mark per dependence column.
    pub in_flight_peak: Vec<u64>,
    /// Traversals per interconnect primitive (by column index of `P`),
    /// accumulated from consumed tokens on clocked traces.
    pub link_occupancy: Vec<u64>,
    /// Total violation events.
    pub violations: u64,
    /// Total fault-injection events.
    pub faults: u64,
    /// Events dropped by a [`TraceConfig::max_events`] cap (counters above
    /// still include them).
    pub dropped_events: u64,
    /// Compile-cache lookups answered from the in-memory or disk layer.
    pub cache_hits: u64,
    /// Compile-cache lookups that fell through to a fresh compile.
    pub cache_misses: u64,
    /// Per-column route usage, remembered from `ColumnRoute` events.
    column_usage: Vec<Option<IVec>>,
}

impl TraceRollup {
    fn grow(v: &mut Vec<u64>, len: usize) {
        if v.len() < len {
            v.resize(len, 0);
        }
    }

    fn observe(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::ColumnRoute { column, usage, .. } => {
                if self.column_usage.len() <= *column {
                    self.column_usage.resize(*column + 1, None);
                }
                Self::grow(&mut self.link_occupancy, usage.dim());
                self.column_usage[*column] = Some(usage.clone());
            }
            TraceEvent::ColumnUnroutable { column } => {
                if self.column_usage.len() <= *column {
                    self.column_usage.resize(*column + 1, None);
                }
            }
            TraceEvent::PointFired {
                cycle, processor, ..
            } => {
                self.fires += 1;
                *self.pe_fires.entry(processor.clone()).or_insert(0) += 1;
                *self.wavefront.entry(*cycle).or_insert(0) += 1;
            }
            TraceEvent::TokenLaunched { column, .. } => {
                Self::grow(&mut self.launched, column + 1);
                self.launched[*column] += 1;
            }
            TraceEvent::TokenConsumed { column, .. } => {
                Self::grow(&mut self.consumed, column + 1);
                self.consumed[*column] += 1;
                if let Some(Some(usage)) = self.column_usage.get(*column) {
                    for (l, &cnt) in usage.iter().enumerate() {
                        self.link_occupancy[l] += cnt as u64;
                    }
                }
            }
            TraceEvent::BufferOccupancy {
                column, in_flight, ..
            } => {
                Self::grow(&mut self.in_flight_peak, column + 1);
                self.in_flight_peak[*column] = self.in_flight_peak[*column].max(*in_flight);
            }
            TraceEvent::Violation { .. } => self.violations += 1,
            TraceEvent::FaultInjected { .. } => self.faults += 1,
            TraceEvent::BackendFallback { .. } => {}
            TraceEvent::CacheQuery { outcome, .. } => {
                if outcome.ends_with("hit") {
                    self.cache_hits += 1;
                } else {
                    self.cache_misses += 1;
                }
            }
            TraceEvent::BatchWidthClamped { .. } => {}
        }
    }

    /// Total points fired.
    pub fn fire_total(&self) -> u64 {
        self.fires
    }

    /// First-to-last busy cycle, inclusive (0 when nothing fired) — the
    /// traced counterpart of the engines' `cycles`.
    pub fn cycle_span(&self) -> i64 {
        match (
            self.wavefront.keys().next(),
            self.wavefront.keys().next_back(),
        ) {
            (Some(a), Some(b)) => b - a + 1,
            _ => 0,
        }
    }

    /// Widest wavefront (peak points fired in one cycle).
    pub fn peak_wavefront(&self) -> u64 {
        self.wavefront.values().copied().max().unwrap_or(0)
    }

    /// Fires divided by `observed PEs × cycle span` — measured utilisation.
    pub fn utilization(&self) -> f64 {
        let span = self.cycle_span();
        if span > 0 && !self.pe_fires.is_empty() {
            self.fires as f64 / (self.pe_fires.len() as f64 * span as f64)
        } else {
            0.0
        }
    }
}

/// In-memory sink: captures events (per [`TraceConfig`]) and maintains a
/// [`TraceRollup`] incrementally.
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    config: TraceConfig,
    events: Vec<TraceEvent>,
    rollup: TraceRollup,
}

impl RecordingSink {
    /// A sink that keeps the full event list.
    pub fn new() -> Self {
        RecordingSink::default()
    }

    /// A sink with explicit retention configuration.
    pub fn with_config(config: TraceConfig) -> Self {
        RecordingSink {
            config,
            ..RecordingSink::default()
        }
    }

    /// The captured events (empty when `config.events` is off).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The rollup counters.
    pub fn rollup(&self) -> &TraceRollup {
        &self.rollup
    }

    /// Rendered descriptions of all captured violation events, in order.
    pub fn violation_descriptions(&self) -> Vec<String> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Violation { description, .. } => Some(description.clone()),
                _ => None,
            })
            .collect()
    }

    /// Exports the capture in the Chrome trace-event JSON format
    /// (`chrome://tracing` / Perfetto): each fired point becomes a complete
    /// (`"X"`) event of duration 1 on its processor's track, the per-cycle
    /// wavefront width becomes a counter (`"C"`) series, and violations and
    /// backend fallbacks become instant (`"i"`) events. Timestamps are
    /// cycles, rebased to 0.
    pub fn to_chrome_trace(&self) -> String {
        use serde_json::json;
        let min_cycle = self
            .events
            .iter()
            .filter_map(TraceEvent::cycle)
            .min()
            .unwrap_or(0);
        let mut tids: BTreeMap<IVec, u64> = BTreeMap::new();
        let mut out: Vec<serde_json::Value> = Vec::new();
        for ev in &self.events {
            match ev {
                TraceEvent::PointFired {
                    cycle,
                    point,
                    processor,
                } => {
                    let next = tids.len() as u64;
                    let tid = *tids.entry(processor.clone()).or_insert(next);
                    out.push(json!({
                        "name": point.to_string(),
                        "cat": "fire",
                        "ph": "X",
                        "ts": cycle - min_cycle,
                        "dur": 1,
                        "pid": 0,
                        "tid": tid,
                        "args": { "processor": processor.to_string() },
                    }));
                }
                TraceEvent::Violation { cycle, description } => out.push(json!({
                    "name": "violation",
                    "cat": "violation",
                    "ph": "i",
                    "s": "g",
                    "ts": cycle - min_cycle,
                    "pid": 0,
                    "tid": 0,
                    "args": { "description": description },
                })),
                TraceEvent::FaultInjected {
                    cycle, point, kind, ..
                } => out.push(json!({
                    "name": "fault",
                    "cat": "fault",
                    "ph": "i",
                    "s": "g",
                    "ts": cycle - min_cycle,
                    "pid": 0,
                    "tid": 0,
                    "args": { "point": point.to_string(), "kind": kind },
                })),
                TraceEvent::BackendFallback { from, to, reason } => out.push(json!({
                    "name": "backend-fallback",
                    "cat": "meta",
                    "ph": "i",
                    "s": "g",
                    "ts": 0,
                    "pid": 0,
                    "tid": 0,
                    "args": { "from": from, "to": to, "reason": reason },
                })),
                _ => {}
            }
        }
        for (c, w) in &self.rollup.wavefront {
            out.push(json!({
                "name": "wavefront",
                "cat": "rollup",
                "ph": "C",
                "ts": c - min_cycle,
                "pid": 0,
                "args": { "width": w },
            }));
        }
        serde_json::to_string_pretty(&json!({ "traceEvents": out }))
            .expect("chrome trace serialises")
    }

    /// Exports every captured event as one CSV row
    /// (`kind,cycle,column,point,processor,detail`; vector-valued fields are
    /// quoted).
    pub fn to_csv(&self) -> String {
        fn q(s: &str) -> String {
            format!("\"{}\"", s.replace('"', "\"\""))
        }
        let mut out = String::from("kind,cycle,column,point,processor,detail\n");
        for ev in &self.events {
            let row = match ev {
                TraceEvent::ColumnRoute {
                    column,
                    hops,
                    usage,
                } => format!(
                    "column_route,,{column},,,{}",
                    q(&format!("hops={hops} usage={usage}"))
                ),
                TraceEvent::ColumnUnroutable { column } => {
                    format!("column_unroutable,,{column},,,")
                }
                TraceEvent::PointFired {
                    cycle,
                    point,
                    processor,
                } => format!(
                    "point_fired,{cycle},,{},{},",
                    q(&point.to_string()),
                    q(&processor.to_string())
                ),
                TraceEvent::TokenLaunched {
                    cycle,
                    column,
                    from,
                } => {
                    format!("token_launched,{cycle},{column},{},,", q(&from.to_string()))
                }
                TraceEvent::TokenConsumed {
                    cycle,
                    column,
                    at,
                    slack,
                } => format!(
                    "token_consumed,{cycle},{column},{},,{}",
                    q(&at.to_string()),
                    q(&format!("slack={slack}"))
                ),
                TraceEvent::Violation { cycle, description } => {
                    format!("violation,{cycle},,,,{}", q(description))
                }
                TraceEvent::BufferOccupancy {
                    cycle,
                    column,
                    in_flight,
                } => format!(
                    "buffer_occupancy,{cycle},{column},,,{}",
                    q(&format!("in_flight={in_flight}"))
                ),
                TraceEvent::FaultInjected {
                    cycle,
                    point,
                    processor,
                    column,
                    kind,
                } => format!(
                    "fault_injected,{cycle},{},{},{},{}",
                    column.map(|c| c.to_string()).unwrap_or_default(),
                    q(&point.to_string()),
                    q(&processor.to_string()),
                    q(kind)
                ),
                TraceEvent::BackendFallback { from, to, reason } => format!(
                    "backend_fallback,,,,,{}",
                    q(&format!("from={from} to={to} reason={reason}"))
                ),
                TraceEvent::CacheQuery { key, outcome } => format!(
                    "cache_query,,,,,{}",
                    q(&format!("key={key} outcome={outcome}"))
                ),
                TraceEvent::BatchWidthClamped { requested, used } => format!(
                    "batch_width_clamped,,,,,{}",
                    q(&format!("requested={requested} used={used}"))
                ),
            };
            let _ = writeln!(out, "{row}");
        }
        out
    }
}

impl TraceSink for RecordingSink {
    fn record(&mut self, event: TraceEvent) {
        self.rollup.observe(&event);
        if self.config.events {
            match self.config.max_events {
                Some(cap) if self.events.len() >= cap => self.rollup.dropped_events += 1,
                _ => self.events.push(event),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fire(cycle: i64, point: &[i64], proc_: &[i64]) -> TraceEvent {
        TraceEvent::PointFired {
            cycle,
            point: IVec(point.to_vec()),
            processor: IVec(proc_.to_vec()),
        }
    }

    #[test]
    fn null_sink_is_statically_disabled() {
        assert!(!NullSink::ENABLED);
        assert!(RecordingSink::ENABLED);
        // And recording is the trait default.
        struct Custom;
        impl TraceSink for Custom {
            fn record(&mut self, _e: TraceEvent) {}
        }
        assert!(Custom::ENABLED);
    }

    #[test]
    fn rollup_tracks_fires_wavefront_and_tokens() {
        let mut sink = RecordingSink::new();
        sink.record(TraceEvent::ColumnRoute {
            column: 0,
            hops: 2,
            usage: IVec::from([2, 0]),
        });
        sink.record(fire(5, &[1, 1], &[0, 0]));
        sink.record(fire(5, &[1, 2], &[0, 1]));
        sink.record(fire(7, &[2, 1], &[0, 0]));
        sink.record(TraceEvent::TokenLaunched {
            cycle: 5,
            column: 0,
            from: IVec::from([1, 1]),
        });
        sink.record(TraceEvent::BufferOccupancy {
            cycle: 5,
            column: 0,
            in_flight: 1,
        });
        sink.record(TraceEvent::TokenConsumed {
            cycle: 7,
            column: 0,
            at: IVec::from([2, 1]),
            slack: 2,
        });
        sink.record(TraceEvent::Violation {
            cycle: 7,
            description: "boom".into(),
        });

        let r = sink.rollup();
        assert_eq!(r.fire_total(), 3);
        assert_eq!(r.cycle_span(), 3); // cycles 5..=7
        assert_eq!(r.peak_wavefront(), 2);
        assert_eq!(r.pe_fires[&IVec::from([0, 0])], 2);
        assert_eq!(r.launched, vec![1]);
        assert_eq!(r.consumed, vec![1]);
        assert_eq!(r.in_flight_peak, vec![1]);
        assert_eq!(r.link_occupancy, vec![2, 0]);
        assert_eq!(r.violations, 1);
        assert!((r.utilization() - 3.0 / (2.0 * 3.0)).abs() < 1e-12);
        assert_eq!(sink.violation_descriptions(), vec!["boom".to_string()]);
    }

    #[test]
    fn rollup_only_config_drops_events_but_keeps_counters() {
        let mut sink = RecordingSink::with_config(TraceConfig {
            events: false,
            max_events: None,
        });
        sink.record(fire(1, &[1], &[0]));
        assert!(sink.events().is_empty());
        assert_eq!(sink.rollup().fire_total(), 1);
    }

    #[test]
    fn max_events_cap_keeps_the_prefix_and_counts_the_rest() {
        let mut sink = RecordingSink::with_config(TraceConfig {
            events: true,
            max_events: Some(2),
        });
        for c in 0..5 {
            sink.record(fire(c, &[c], &[0]));
        }
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.rollup().dropped_events, 3);
        // Counters still see every event.
        assert_eq!(sink.rollup().fire_total(), 5);
        assert_eq!(sink.rollup().cycle_span(), 5);
    }

    #[test]
    fn fault_events_are_counted_and_exported() {
        let mut sink = RecordingSink::new();
        sink.record(fire(2, &[1, 1], &[0, 0]));
        sink.record(TraceEvent::FaultInjected {
            cycle: 2,
            point: IVec::from([1, 1]),
            processor: IVec::from([0, 0]),
            column: None,
            kind: "transient_flip bit=s".into(),
        });
        sink.record(TraceEvent::FaultInjected {
            cycle: 3,
            point: IVec::from([1, 2]),
            processor: IVec::from([0, 1]),
            column: Some(4),
            kind: "dropped_transfer".into(),
        });
        assert_eq!(sink.rollup().faults, 2);
        let csv = sink.to_csv();
        assert!(csv.contains("fault_injected,2,,"));
        assert!(csv.contains("fault_injected,3,4,"));
        assert!(csv.contains("transient_flip bit=s"));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_one_event_per_fire() {
        if serde_json::to_string(&1i64)
            .map(|s| s.is_empty())
            .unwrap_or(true)
        {
            return; // offline serde_json stub: no real JSON to validate
        }
        let mut sink = RecordingSink::new();
        sink.record(fire(3, &[1, 1], &[0, 0]));
        sink.record(fire(4, &[1, 2], &[0, 1]));
        sink.record(TraceEvent::Violation {
            cycle: 4,
            description: "late".into(),
        });
        let doc: serde_json::Value = serde_json::from_str(&sink.to_chrome_trace()).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        let fires: Vec<_> = events.iter().filter(|e| e["cat"] == "fire").collect();
        assert_eq!(fires.len(), 2);
        // Timestamps are rebased to the first busy cycle.
        assert_eq!(fires[0]["ts"], 0);
        assert_eq!(fires[1]["ts"], 1);
        assert!(events.iter().any(|e| e["cat"] == "violation"));
        assert!(events
            .iter()
            .any(|e| e["ph"] == "C" && e["name"] == "wavefront"));
    }

    #[test]
    fn csv_has_header_and_one_row_per_event() {
        let mut sink = RecordingSink::new();
        sink.record(fire(3, &[1, 1], &[0, 0]));
        sink.record(TraceEvent::BackendFallback {
            from: "compiled".into(),
            to: "interpreted".into(),
            reason: "too many columns".into(),
        });
        let csv = sink.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "kind,cycle,column,point,processor,detail");
        assert!(lines[1].starts_with("point_fired,3"));
        assert!(lines[2].contains("backend_fallback"));
    }
}
