//! Versioned binary persistence for [`CompiledSchedule`] artifacts.
//!
//! The compile cache (`bitlevel-cache`) stores compiled schedules on disk so
//! warm evaluations skip `try_compile` entirely. Serde derives exist on
//! [`CompiledSchedule`] for JSON transport, but the disk layer uses this
//! hand-rolled codec instead: it is dependency-free (it works identically
//! against the offline `.dev-stubs` serde), explicitly versioned, and
//! checksummed so corrupted or truncated cache entries are *detected* and
//! reported as a typed [`PersistError`] — never a panic, never a silently
//! wrong schedule.
//!
//! ## Wire format (all integers little-endian)
//!
//! ```text
//! offset 0   magic            b"BLSC"
//! offset 4   format version   u32    (= SCHEDULE_FORMAT_VERSION)
//! offset 8   payload length   u64
//! offset 16  payload          <field stream, see encode()>
//! tail       checksum         u64    FNV-1a over bytes [0, 16 + payload_len)
//! ```
//!
//! [`CompiledSchedule::from_bytes`] validates magic, version, length and
//! checksum before touching the payload, then re-validates every structural
//! invariant of the decoded schedule (slot bounds, CSR monotonicity, fire
//! order being a permutation) so even a checksum-colliding forgery cannot
//! produce out-of-bounds indices at execution time.

use crate::compiled::{CompiledSchedule, NO_SLOT};
use bitlevel_linalg::IVec;
use std::fmt;

/// Current on-disk format version. Bump whenever the field stream of
/// [`CompiledSchedule`] changes shape; readers reject other versions with
/// [`PersistError::UnsupportedVersion`] and the cache recompiles.
pub const SCHEDULE_FORMAT_VERSION: u32 = 1;

/// Magic prefix of a persisted schedule image ("BitLevel Schedule Cache").
pub const SCHEDULE_MAGIC: [u8; 4] = *b"BLSC";

/// Why a persisted [`CompiledSchedule`] image was rejected. Every variant is
/// recoverable: the compile cache records a miss and recompiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The image does not start with [`SCHEDULE_MAGIC`].
    BadMagic,
    /// The image's format version differs from [`SCHEDULE_FORMAT_VERSION`].
    UnsupportedVersion {
        /// Version found in the image header.
        found: u32,
    },
    /// The image ends before the declared payload + checksum.
    Truncated,
    /// The FNV-1a checksum over header + payload does not match the tail.
    ChecksumMismatch,
    /// The payload decoded, but violates a structural invariant of
    /// [`CompiledSchedule`] (bad lengths, out-of-range slot, non-monotone
    /// CSR offsets, ...).
    Malformed(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a persisted schedule (bad magic)"),
            PersistError::UnsupportedVersion { found } => write!(
                f,
                "schedule format version {found} (this build reads {SCHEDULE_FORMAT_VERSION})"
            ),
            PersistError::Truncated => write!(f, "persisted schedule is truncated"),
            PersistError::ChecksumMismatch => write!(f, "persisted schedule failed its checksum"),
            PersistError::Malformed(what) => write!(f, "persisted schedule is malformed: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// FNV-1a 64-bit over a byte slice — the same primitive the cache-key
/// digest uses, applied here as a whole-image integrity checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn ivec(&mut self, v: &IVec) {
        self.usize(v.dim());
        for &x in v.iter() {
            self.i64(x);
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.bytes.len() {
            return Err(PersistError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// A length prefix, bounded by what the remaining bytes could possibly
    /// hold (`min_elem_size` bytes per element) so a corrupted length can
    /// never trigger a huge allocation.
    fn len(&mut self, min_elem_size: usize) -> Result<usize, PersistError> {
        let n = self.u64()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        if n.saturating_mul(min_elem_size.max(1) as u64) > remaining {
            return Err(PersistError::Truncated);
        }
        Ok(n as usize)
    }
    fn ivec(&mut self) -> Result<IVec, PersistError> {
        let n = self.len(8)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.i64()?);
        }
        Ok(IVec(v))
    }
}

impl CompiledSchedule {
    /// Serialises the schedule into the versioned, checksummed wire format
    /// described in the [module docs](crate::persist).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer { buf: Vec::new() };
        w.usize(self.n);
        w.usize(self.m);
        w.usize(self.n_points);
        w.usize(self.points.len());
        for &x in &self.points {
            w.i64(x);
        }
        for &c in &self.cycle {
            w.i64(c);
        }
        for &p in &self.proc {
            w.u32(p);
        }
        w.usize(self.proc_coords.len());
        for pc in &self.proc_coords {
            w.ivec(pc);
        }
        for &p in &self.producers {
            w.u32(p);
        }
        for &m in &self.consume_mask {
            w.u64(m);
        }
        for &m in &self.launch_mask {
            w.u64(m);
        }
        for h in &self.clocked_hops {
            match h {
                Some(h) => {
                    w.u8(1);
                    w.i64(*h);
                }
                None => w.u8(0),
            }
        }
        for u in &self.clocked_usage {
            match u {
                Some(u) => {
                    w.u8(1);
                    w.ivec(u);
                }
                None => w.u8(0),
            }
        }
        for r in &self.mapped_routes {
            match r {
                Some((usage, buffers, hops)) => {
                    w.u8(1);
                    w.ivec(usage);
                    w.i64(*buffers);
                    w.i64(*hops);
                }
                None => w.u8(0),
            }
        }
        for &b in &self.budgets {
            w.i64(b);
        }
        for &a in &self.active_count {
            w.u64(a);
        }
        w.usize(self.cycle_values.len());
        for &c in &self.cycle_values {
            w.i64(c);
        }
        for &o in &self.cycle_offsets {
            w.usize(o);
        }
        for &s in &self.fire_order {
            w.u32(s);
        }
        w.usize(self.n_links);
        w.u8(self.causal as u8);

        let payload = w.buf;
        let mut out = Vec::with_capacity(16 + payload.len() + 8);
        out.extend_from_slice(&SCHEDULE_MAGIC);
        out.extend_from_slice(&SCHEDULE_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes and fully validates a persisted schedule image. Any defect —
    /// wrong magic, version skew, truncation, checksum failure, or a payload
    /// that violates a structural invariant — comes back as a typed
    /// [`PersistError`]; this function never panics on untrusted input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        if bytes.len() < 16 + 8 {
            if bytes.len() >= 4 && bytes[..4] != SCHEDULE_MAGIC {
                return Err(PersistError::BadMagic);
            }
            return Err(PersistError::Truncated);
        }
        if bytes[..4] != SCHEDULE_MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != SCHEDULE_FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion { found: version });
        }
        let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let body_end = 16usize
            .checked_add(payload_len)
            .ok_or(PersistError::Truncated)?;
        if bytes.len() < body_end + 8 {
            return Err(PersistError::Truncated);
        }
        let sum = u64::from_le_bytes(bytes[body_end..body_end + 8].try_into().unwrap());
        if fnv1a(&bytes[..body_end]) != sum {
            return Err(PersistError::ChecksumMismatch);
        }

        let mut r = Reader {
            bytes: &bytes[16..body_end],
            pos: 0,
        };
        let n = r.u64()? as usize;
        let m = r.u64()? as usize;
        let n_points = r.len(0)?;
        if m > 64 {
            return Err(PersistError::Malformed("more than 64 dependence columns"));
        }
        let points_len = r.len(8)?;
        if points_len != n_points.checked_mul(n).ok_or(PersistError::Truncated)? {
            return Err(PersistError::Malformed("points length is not n_points * n"));
        }
        let mut points = Vec::with_capacity(points_len);
        for _ in 0..points_len {
            points.push(r.i64()?);
        }
        let mut cycle = Vec::with_capacity(n_points);
        for _ in 0..n_points {
            cycle.push(r.i64()?);
        }
        let mut proc = Vec::with_capacity(n_points);
        for _ in 0..n_points {
            proc.push(r.u32()?);
        }
        let n_procs = r.len(8)?;
        let mut proc_coords = Vec::with_capacity(n_procs);
        for _ in 0..n_procs {
            proc_coords.push(r.ivec()?);
        }
        if proc.iter().any(|&id| id as usize >= n_procs) {
            return Err(PersistError::Malformed("processor id out of range"));
        }
        let producers_len = n_points.checked_mul(m).ok_or(PersistError::Truncated)?;
        let mut producers = Vec::with_capacity(producers_len);
        for _ in 0..producers_len {
            let p = r.u32()?;
            if p != NO_SLOT && p as usize >= n_points {
                return Err(PersistError::Malformed("producer slot out of range"));
            }
            producers.push(p);
        }
        let mut consume_mask = Vec::with_capacity(n_points);
        for _ in 0..n_points {
            consume_mask.push(r.u64()?);
        }
        let mut launch_mask = Vec::with_capacity(n_points);
        for _ in 0..n_points {
            launch_mask.push(r.u64()?);
        }
        let mut clocked_hops = Vec::with_capacity(m);
        for _ in 0..m {
            clocked_hops.push(match r.u8()? {
                0 => None,
                1 => Some(r.i64()?),
                _ => return Err(PersistError::Malformed("bad Option tag")),
            });
        }
        let mut clocked_usage = Vec::with_capacity(m);
        for _ in 0..m {
            clocked_usage.push(match r.u8()? {
                0 => None,
                1 => Some(r.ivec()?),
                _ => return Err(PersistError::Malformed("bad Option tag")),
            });
        }
        let mut mapped_routes = Vec::with_capacity(m);
        for _ in 0..m {
            mapped_routes.push(match r.u8()? {
                0 => None,
                1 => {
                    let usage = r.ivec()?;
                    let buffers = r.i64()?;
                    let hops = r.i64()?;
                    Some((usage, buffers, hops))
                }
                _ => return Err(PersistError::Malformed("bad Option tag")),
            });
        }
        let mut budgets = Vec::with_capacity(m);
        for _ in 0..m {
            budgets.push(r.i64()?);
        }
        let mut active_count = Vec::with_capacity(m);
        for _ in 0..m {
            active_count.push(r.u64()?);
        }
        let n_cycles = r.len(8)?;
        let mut cycle_values = Vec::with_capacity(n_cycles);
        for _ in 0..n_cycles {
            cycle_values.push(r.i64()?);
        }
        if cycle_values.windows(2).any(|w| w[0] >= w[1]) {
            return Err(PersistError::Malformed("cycle values not ascending"));
        }
        let mut cycle_offsets = Vec::with_capacity(n_cycles + 1);
        for _ in 0..n_cycles + 1 {
            cycle_offsets.push(r.u64()? as usize);
        }
        if cycle_offsets.first() != Some(&0)
            || cycle_offsets.last() != Some(&n_points)
            || cycle_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(PersistError::Malformed("CSR offsets not monotone to |J|"));
        }
        if n_points > 0 && n_cycles == 0 {
            return Err(PersistError::Malformed("points without firing cycles"));
        }
        let mut fire_order = Vec::with_capacity(n_points);
        let mut seen = vec![false; n_points];
        for _ in 0..n_points {
            let s = r.u32()?;
            if s as usize >= n_points || seen[s as usize] {
                return Err(PersistError::Malformed("fire order is not a permutation"));
            }
            seen[s as usize] = true;
            fire_order.push(s);
        }
        let n_links = r.u64()? as usize;
        if clocked_usage
            .iter()
            .flatten()
            .chain(mapped_routes.iter().flatten().map(|(u, _, _)| u))
            .any(|u| u.dim() != n_links)
        {
            return Err(PersistError::Malformed("route usage width != n_links"));
        }
        let causal = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(PersistError::Malformed("bad bool")),
        };
        if r.pos != r.bytes.len() {
            return Err(PersistError::Malformed("trailing bytes in payload"));
        }

        Ok(CompiledSchedule {
            n,
            m,
            n_points,
            points,
            cycle,
            proc,
            proc_coords,
            producers,
            consume_mask,
            launch_mask,
            clocked_hops,
            clocked_usage,
            mapped_routes,
            budgets,
            active_count,
            cycle_values,
            cycle_offsets,
            fire_order,
            n_links,
            causal,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_ir::AlgorithmTriplet;
    use bitlevel_ir::{BoxSet, Dependence, DependenceSet, Predicate};
    use bitlevel_mapping::PaperDesign;

    fn matmul_structure(u: i64, p: i64) -> AlgorithmTriplet {
        let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
        AlgorithmTriplet::new(
            j,
            DependenceSet::new(vec![
                Dependence::conditional([0, 1, 0, 0, 0], "x", Predicate::eq_const(3, 1)),
                Dependence::conditional([1, 0, 0, 0, 0], "y", Predicate::eq_const(4, 1)),
                Dependence::conditional(
                    [0, 0, 1, 0, 0],
                    "z",
                    Predicate::eq_const(3, p).or(&Predicate::eq_const(4, 1)),
                ),
                Dependence::conditional([0, 0, 0, 1, 0], "x", Predicate::ne_const(3, 1)),
                Dependence::conditional([0, 0, 0, 0, 1], "y,c", Predicate::ne_const(4, 1)),
                Dependence::uniform([0, 0, 0, 1, -1], "z"),
                Dependence::conditional([0, 0, 0, 0, 2], "c'", Predicate::eq_const(3, p)),
            ]),
            "bit-level matmul, Expansion II (composed order)",
        )
    }

    fn sample() -> CompiledSchedule {
        let alg = matmul_structure(3, 3);
        let design = PaperDesign::TimeOptimal;
        CompiledSchedule::try_compile(&alg, &design.mapping(3), &design.interconnect(3)).unwrap()
    }

    #[test]
    fn roundtrip_is_lossless() {
        let sched = sample();
        let bytes = sched.to_bytes();
        let back = CompiledSchedule::from_bytes(&bytes).expect("roundtrip decodes");
        assert_eq!(back, sched);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xFF;
        assert_eq!(
            CompiledSchedule::from_bytes(&bytes),
            Err(PersistError::BadMagic)
        );
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4] = SCHEDULE_FORMAT_VERSION as u8 + 1;
        // Re-stamp the checksum so version skew (not corruption) is what the
        // reader sees — this models a valid image from a future build.
        let body_end = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            CompiledSchedule::from_bytes(&bytes),
            Err(PersistError::UnsupportedVersion {
                found: SCHEDULE_FORMAT_VERSION + 1
            })
        );
    }

    #[test]
    fn truncation_is_rejected_at_any_length() {
        let bytes = sample().to_bytes();
        for keep in [0, 3, 4, 15, 16, bytes.len() / 2, bytes.len() - 1] {
            let err = CompiledSchedule::from_bytes(&bytes[..keep])
                .expect_err("truncated image must not decode");
            assert!(
                matches!(err, PersistError::Truncated | PersistError::BadMagic),
                "unexpected error at keep={keep}: {err:?}"
            );
        }
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert_eq!(
            CompiledSchedule::from_bytes(&bytes),
            Err(PersistError::ChecksumMismatch)
        );
    }

    #[test]
    fn forged_checksum_still_hits_structural_validation() {
        // Flip a producer slot to an absurd value and re-stamp the checksum:
        // the integrity layer passes, the structural layer must still refuse.
        let sched = sample();
        let bytes = sched.to_bytes();
        // Find the serialized position of producers[0] by re-encoding a
        // mutant and diffing.
        let mut mutant = sched.clone();
        mutant.producers[0] = 7_000_000; // way past n_points
        let mut forged = mutant.to_bytes();
        let body_end = forged.len() - 8;
        let sum = fnv1a(&forged[..body_end]);
        forged[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert_ne!(forged, bytes);
        assert_eq!(
            CompiledSchedule::from_bytes(&forged),
            Err(PersistError::Malformed("producer slot out of range"))
        );
    }

    #[test]
    fn decoded_schedule_executes_identically() {
        use crate::clocked::MatmulExpansionIICells;
        let (u, p) = (3usize, 3usize);
        let sched = sample();
        let back = CompiledSchedule::from_bytes(&sched.to_bytes()).unwrap();
        let mmax = crate::BitMatmulArray::new(u, p).max_safe_entry();
        let x: Vec<Vec<u128>> = (0..u)
            .map(|i| {
                (0..u)
                    .map(|j| ((3 * i + 5 * j + 1) as u128) % (mmax + 1))
                    .collect()
            })
            .collect();
        let y: Vec<Vec<u128>> = (0..u)
            .map(|i| {
                (0..u)
                    .map(|j| ((7 * i + j + 2) as u128) % (mmax + 1))
                    .collect()
            })
            .collect();
        let cells = MatmulExpansionIICells::new(u, p, &x, &y);
        let a = sched.execute(&cells);
        let b = back.execute(&cells);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.peak_in_flight, b.peak_in_flight);
        assert_eq!(a.outputs, b.outputs);
    }
}
