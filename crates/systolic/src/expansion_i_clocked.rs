//! The Expansion I matmul **architecture**, clocked.
//!
//! Section 3.2 argues Expansion I is the better expansion (shallower
//! producers, more uniform cells); the paper nevertheless only *builds*
//! Expansion II architectures. This module completes the picture: cell
//! semantics for the Expansion I structure (3.11b), runnable on the clocked
//! engine under the same mappings — the dependence *vectors* coincide with
//! Expansion II's, so `T` of eq. (4.2) is feasible for both and the measured
//! cycle count is identical; what changes is which cells are wide and where
//! the accumulator lives (forwarded partial sums instead of boundary
//! injection).
//!
//! The cells execute the **literal** structure and record every dropped
//! row-end carry (cf. [`crate::expansion_i`]), so the accounting identity
//! `result + Σ 2^weight ≡ product (mod 2^{2p−1})` is checkable on the
//! clocked run too.

use crate::clocked::{CellSemantics, ClockedRun, MatmulSignals};
use bitlevel_arith::{from_bits, full_add, to_bits, wide_add, Bit};
use bitlevel_linalg::IVec;

/// Clocked cell semantics for the Expansion I bit-level matmul (composed
/// column order `x, y, z, d̄₄, d̄₅, d̄₆, d̄₇`).
pub struct MatmulExpansionICells {
    u: usize,
    p: usize,
    x_bits: Vec<Vec<Vec<Bit>>>,
    y_bits: Vec<Vec<Vec<Bit>>>,
    /// Dropped row-end carries: `(j1, j2, weight)`.
    dropped: Vec<(usize, usize, u32)>,
}

impl MatmulExpansionICells {
    /// Prepares operand bit planes.
    ///
    /// # Panics
    /// Panics on shape mismatches or oversized entries.
    pub fn new(u: usize, p: usize, x: &[Vec<u128>], y: &[Vec<u128>]) -> Self {
        assert_eq!(x.len(), u, "x must be u x u");
        assert_eq!(y.len(), u, "y must be u x u");
        let x_bits = x
            .iter()
            .map(|row| {
                assert_eq!(row.len(), u);
                row.iter().map(|&v| to_bits(v, p)).collect()
            })
            .collect();
        let y_bits = y
            .iter()
            .map(|row| {
                assert_eq!(row.len(), u);
                row.iter().map(|&v| to_bits(v, p)).collect()
            })
            .collect();
        MatmulExpansionICells {
            u,
            p,
            x_bits,
            y_bits,
            dropped: Vec::new(),
        }
    }

    /// Value lost at accumulator `(j₁, j₂)` (1-based), from the recorded
    /// dropped carries.
    pub fn lost_value(&self, j1: usize, j2: usize) -> u128 {
        self.dropped
            .iter()
            .filter(|(a, b, _)| (*a, *b) == (j1, j2))
            .map(|&(_, _, w)| 1u128 << w)
            .sum()
    }

    /// Total dropped carries across the run.
    pub fn dropped_count(&self) -> usize {
        self.dropped.len()
    }

    /// Extracts each accumulator (mod `2^{2p−1}`) from a finished run —
    /// Expansion I results appear on the same boundary positions of the last
    /// tile as Expansion II's (the drain happens there).
    pub fn extract_product(&self, run: &ClockedRun<MatmulSignals>) -> Vec<Vec<u128>> {
        let (u, p) = (self.u, self.p);
        let mut z = vec![vec![0u128; u]; u];
        for j1 in 1..=u {
            for j2 in 1..=u {
                let mut bits: Vec<Bit> = Vec::with_capacity(2 * p - 1);
                for i in 1..=p {
                    let q = IVec::from([j1 as i64, j2 as i64, u as i64, i as i64, 1]);
                    bits.push(run.outputs[&q].s);
                }
                for i in p + 1..=2 * p - 1 {
                    let q =
                        IVec::from([j1 as i64, j2 as i64, u as i64, p as i64, (i - p + 1) as i64]);
                    bits.push(run.outputs[&q].s);
                }
                z[j1 - 1][j2 - 1] = from_bits(&bits);
            }
        }
        z
    }

    /// The mod-`2^{2p−1}` accounting reference.
    pub fn accounting_holds(&self, x: &[Vec<u128>], y: &[Vec<u128>], z: &[Vec<u128>]) -> bool {
        let (u, p) = (self.u, self.p);
        let mask = (1u128 << (2 * p - 1)) - 1;
        for j1 in 1..=u {
            for j2 in 1..=u {
                let truth: u128 = (0..u).map(|k| x[j1 - 1][k] * y[k][j2 - 1]).sum();
                let recon = (z[j1 - 1][j2 - 1] + self.lost_value(j1, j2)) & mask;
                if recon != truth & mask {
                    return false;
                }
            }
        }
        true
    }
}

impl CellSemantics for MatmulExpansionICells {
    type Bundle = MatmulSignals;

    fn compute(&mut self, q: &IVec, inputs: &[Option<MatmulSignals>]) -> MatmulSignals {
        let (j1, j2, j3, i1, i2) = (
            q[0] as usize,
            q[1] as usize,
            q[2] as usize,
            q[3] as usize,
            q[4] as usize,
        );
        let (u, p) = (self.u, self.p);

        // Operand bits: identical pipelining to Expansion II.
        let x = if i1 == 1 {
            match &inputs[0] {
                Some(b) => b.x,
                None => self.x_bits[j1 - 1][j3 - 1][i2 - 1],
            }
        } else {
            inputs[3].as_ref().expect("d4 token").x
        };
        let y = if i2 == 1 {
            match &inputs[1] {
                Some(b) => b.y,
                None => self.y_bits[j3 - 1][j2 - 1][i1 - 1],
            }
        } else {
            inputs[4].as_ref().expect("d5 token").y
        };
        let pp = x & y;

        let c_in = if i2 > 1 {
            inputs[4].as_ref().is_some_and(|b| b.c)
        } else {
            false
        };
        // d̄₃ (uniform in Expansion I): the forwarded partial sum of the same
        // cell in the previous tile; absent at j3 = 1.
        let fwd = inputs[2].as_ref().is_some_and(|b| b.s);

        let (s, c, cp) = if j3 < u {
            // Interior: the uniform 3-input cell.
            let (s, c) = full_add(pp, c_in, fwd);
            (s, c, false)
        } else {
            // Drain plane: diagonal (d̄₆, literal zero boundary) plus the
            // chained second carry (d̄₇).
            let s_diag = if i1 > 1 && i2 < p {
                inputs[5].as_ref().is_some_and(|b| b.s)
            } else {
                false
            };
            let cp_in = if i2 > 2 {
                inputs[6].as_ref().is_some_and(|b| b.cp)
            } else {
                false
            };
            wide_add(&[pp, c_in, fwd, s_diag, cp_in])
        };

        // Literal structure: the row-end carry leaves the index set; record
        // the loss (weights at or above 2p−1 are absorbed by the modulus).
        if i2 == p && c && (i1 + p - 1) < 2 * p - 1 {
            self.dropped.push((j1, j2, (i1 + p - 1) as u32));
        }
        if j3 == u && i2 >= p - 1 && cp {
            let w = (i1 + i2) as u32;
            if (w as usize) < 2 * p - 1 {
                self.dropped.push((j1, j2, w));
            }
        }

        MatmulSignals { x, y, s, c, cp }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clocked::run_clocked;
    use bitlevel_ir::{AlgorithmTriplet, BoxSet, Dependence, DependenceSet, Predicate};
    use bitlevel_mapping::PaperDesign;

    /// The Expansion I matmul structure (3.11b) in composed column order.
    fn structure_i(u: i64, p: i64) -> AlgorithmTriplet {
        let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
        AlgorithmTriplet::new(
            j,
            DependenceSet::new(vec![
                Dependence::conditional([0, 1, 0, 0, 0], "x", Predicate::eq_const(3, 1)),
                Dependence::conditional([1, 0, 0, 0, 0], "y", Predicate::eq_const(4, 1)),
                Dependence::uniform([0, 0, 1, 0, 0], "z"), // d̄₃ uniform in I
                Dependence::conditional([0, 0, 0, 1, 0], "x", Predicate::ne_const(3, 1)),
                Dependence::conditional([0, 0, 0, 0, 1], "y,c", Predicate::ne_const(4, 1)),
                Dependence::conditional([0, 0, 0, 1, -1], "z", Predicate::eq_upper(2)),
                Dependence::conditional(
                    [0, 0, 0, 0, 2],
                    "c'",
                    Predicate::ne_const(3, 1)
                        .or(&Predicate::not_in(4, &[1, 2]))
                        .and(&Predicate::eq_upper(2)),
                ),
            ]),
            "bit-level matmul, Expansion I (3.11b)",
        )
    }

    #[test]
    fn expansion_i_architecture_runs_on_the_fig4_mapping() {
        // Same vectors as Expansion II -> T of (4.2) is feasible; the clocked
        // run must be legal and take the identical 3(u−1)+3(p−1)+1 cycles.
        let (u, p) = (3usize, 3usize);
        let alg = structure_i(u as i64, p as i64);
        let design = PaperDesign::TimeOptimal;
        let x: Vec<Vec<u128>> = (0..u)
            .map(|i| (0..u).map(|j| ((2 * i + j) % 4) as u128).collect())
            .collect();
        let y: Vec<Vec<u128>> = (0..u)
            .map(|i| (0..u).map(|j| ((i + 3 * j + 1) % 4) as u128).collect())
            .collect();
        let mut cells = MatmulExpansionICells::new(u, p, &x, &y);
        let run = run_clocked(
            &alg,
            &design.mapping(p as i64),
            &design.interconnect(p as i64),
            &mut cells,
        );
        assert!(run.is_legal(), "{:?}", run.violations);
        assert_eq!(run.cycles, 3 * (u as i64 - 1) + 3 * (p as i64 - 1) + 1);
        // Accounting identity: result + recorded losses == true product.
        let z = cells.extract_product(&run);
        assert!(cells.accounting_holds(&x, &y, &z));
    }

    #[test]
    fn carry_free_operands_give_exact_products() {
        let (u, p) = (2usize, 4usize);
        let alg = structure_i(u as i64, p as i64);
        let design = PaperDesign::TimeOptimal;
        // x rows are distinct powers of two, y = 1: no carries anywhere.
        let x: Vec<Vec<u128>> = (0..u)
            .map(|_| (0..u).map(|k| 1u128 << k).collect())
            .collect();
        let y: Vec<Vec<u128>> = (0..u).map(|_| (0..u).map(|_| 1u128).collect()).collect();
        let mut cells = MatmulExpansionICells::new(u, p, &x, &y);
        let run = run_clocked(
            &alg,
            &design.mapping(p as i64),
            &design.interconnect(p as i64),
            &mut cells,
        );
        assert!(run.is_legal());
        assert_eq!(cells.dropped_count(), 0);
        let z = cells.extract_product(&run);
        for i in 0..u {
            for j in 0..u {
                let want: u128 = (0..u).map(|k| x[i][k] * y[k][j]).sum();
                assert_eq!(z[i][j], want);
            }
        }
    }

    #[test]
    fn agrees_with_the_topological_expansion_i_simulator() {
        let (u, p) = (3usize, 3usize);
        let alg = structure_i(u as i64, p as i64);
        let design = PaperDesign::TimeOptimal;
        let x: Vec<Vec<u128>> = (0..u)
            .map(|i| (0..u).map(|j| ((3 * i + 2 * j + 5) % 8) as u128).collect())
            .collect();
        let y: Vec<Vec<u128>> = (0..u)
            .map(|i| (0..u).map(|j| ((5 * i + j + 3) % 8) as u128).collect())
            .collect();
        let mut cells = MatmulExpansionICells::new(u, p, &x, &y);
        let run = run_clocked(
            &alg,
            &design.mapping(p as i64),
            &design.interconnect(p as i64),
            &mut cells,
        );
        assert!(run.is_legal());
        let clocked_z = cells.extract_product(&run);
        let topo = crate::expansion_i::ExpansionIMatmul::new(u, p).run(&x, &y);
        assert_eq!(clocked_z, topo.z, "clocked vs topological Expansion I");
        // Both record identical total loss per accumulator.
        for j1 in 1..=u {
            for j2 in 1..=u {
                assert_eq!(cells.lost_value(j1, j2), topo.lost_value(j1, j2));
            }
        }
    }
}
