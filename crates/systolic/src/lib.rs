#![warn(missing_docs)]

//! # bitlevel-systolic
//!
//! Cycle-accurate simulation of the processor arrays of Section 4:
//!
//! * [`mapped`] — generic verification of any mapped algorithm
//!   `(J, D, E) + T + P`: measured makespan (vs the closed forms (4.5)/(4.8)),
//!   conflict-freeness, routing causality, utilisation, link traffic; plus
//!   the schedule-independent critical-path and fan-in metrics used to
//!   compare Expansions I and II;
//! * [`bit_array`] — the functional, bit-exact Expansion II matmul array
//!   (the hardware of Figs. 4/5), computing `Z = X·Y mod 2^{2p−1}` through
//!   real full-adder/wide-adder cells;
//! * [`word_array`] — the Section 4.2 word-level comparator
//!   (`(3(u−1)+1)·t_b` with a pluggable bit-level multiplier model);
//! * [`compiled`] — the compile-once/run-many backend: dense point slots via
//!   `BoxSet::rank`, a CSR fire list, an arena token store, and
//!   cycle-sliced parallel execution, bit-identical to the interpreted
//!   engines and selected through [`SimBackend`];
//! * [`batch`] — the lane-packed batch layer over the compiled backend:
//!   up to 64 independent problem instances in the bit-lanes of a `u64`,
//!   one schedule walk per batch, with bitwise word forms of both the
//!   matmul and the generic model-(3.5) cells, per-lane fault masks that
//!   pack up to 64 distinct fault cases into one walk, a generic per-lane
//!   last-resort, and lane extraction back into per-instance
//!   [`ClockedRun`]s;
//! * [`trace`] — structured per-cycle observability shared by all three
//!   engines: a [`TraceSink`] trait with a statically zero-overhead
//!   [`NullSink`], an in-memory [`RecordingSink`] with rollup counters
//!   (per-PE utilisation, wavefront width, in-flight high-water marks,
//!   link occupancy), and Chrome-trace/CSV exporters;
//! * [`fault`] — deterministic fault injection mirrored on the trace
//!   pattern: a [`FaultInjector`] hook (statically inert [`NoFaults`])
//!   consulted identically by all three engines, so seeded fault plans
//!   perturb interpreted and compiled runs bit-identically (the concrete
//!   plan/ABFT layer lives in `bitlevel-fault`).

pub mod batch;
pub mod bit_array;
pub mod clocked;
pub mod compiled;
pub mod expansion_i;
pub mod expansion_i_clocked;
pub mod fault;
pub mod mapped;
pub mod model35;
pub mod partition;
pub mod persist;
pub mod trace;
pub mod viz;
pub mod word_array;

pub use batch::{
    BatchRun, FaultedBatchRun, LaneArena, LaneCellSemantics, LaneFaultMasks, LaneFaultedCells,
    LanePackedBundle, LaneView, MatmulLaneCells, MatmulLaneSignals, PerLaneCells, MAX_LANES,
};
pub use bit_array::{BitMatmulArray, BitMatmulRun};
pub use clocked::{
    run_clocked, run_clocked_faulted, run_clocked_traced, CellSemantics, ClockedRun,
    ClockedViolation, MatmulExpansionIICells, MatmulSignals, SyncCellSemantics,
};
pub use compiled::{
    run_clocked_compiled, simulate_mapped_compiled, BackendConfigError, CompileError,
    CompiledSchedule, SimBackend,
};
pub use expansion_i::{DroppedCarry, ExpansionIMatmul, ExpansionIRun};
pub use expansion_i_clocked::MatmulExpansionICells;
pub use fault::{FaultInjector, FaultableBundle, NoFaults, TransferFault};
pub use mapped::{
    asap_depths, critical_path, fanin_histogram, mean_producer_depth, simulate_mapped,
    simulate_mapped_faulted, simulate_mapped_parallel, simulate_mapped_traced, MappedRunReport,
};
pub use model35::{ColumnMap, ColumnMapError, Model35Cells, Model35LaneCells};
pub use partition::{PartitionError, PartitionStats, PartitionedSchedule};
pub use persist::{PersistError, SCHEDULE_FORMAT_VERSION, SCHEDULE_MAGIC};
pub use trace::{NullSink, RecordingSink, TraceConfig, TraceEvent, TraceRollup, TraceSink};
pub use viz::{
    render_activity_profile, render_block_structure, render_fault_heatmap, render_gantt,
    render_links, render_processor_grid, render_trace_pe_load, render_trace_wavefront,
};
pub use word_array::{WordLevelArray, WordRunReport};
