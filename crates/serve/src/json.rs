//! A small, self-contained JSON value with a writer and a strict parser.
//!
//! The service speaks newline-delimited JSON on the wire, and it must do so
//! in **every** build of this repository — including the offline one, where
//! the vendored `serde_json` stub serialises to empty strings and refuses to
//! deserialise anything (see `.dev-stubs/serde_json`). The wire layer is
//! therefore hand-rolled on this module: requests and frames convert to and
//! from [`Json`] explicitly, so the protocol round-trips bit-exactly with no
//! external dependency. The typed protocol structs still carry serde derives
//! for consumers that want them under the real `serde` (CI builds without
//! the stub patch); this module is what the server and client actually run.
//!
//! Scope: the full JSON data model (null, booleans, numbers, strings with
//! escapes, arrays, objects), with integers kept exact in `i64` and
//! everything else in `f64`. Object key order is preserved (insertion
//! order), which is what makes "bit-identical responses" a meaningful
//! assertion in the tests.

use std::fmt;

/// A parsed or to-be-written JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that is integral and fits `i64`, kept exact.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved as built/parsed.
    Obj(Vec<(String, Json)>),
}

/// Why a frame failed to parse, with the byte offset of the failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing stopped.
    pub pos: usize,
    /// What was expected or found.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// An object from label/value pairs (insertion order preserved).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value under `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Exact integer payload (including floats with zero fraction).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.2e18 => Some(*n as i64),
            _ => None,
        }
    }

    /// Non-negative integer payload.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// Numeric payload, widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// True when this is an object.
    pub fn is_obj(&self) -> bool {
        matches!(self, Json::Obj(_))
    }

    /// Compact single-line rendering (no interior newlines — NDJSON-safe by
    /// construction, because strings escape control characters).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                    if n.fract() == 0.0 && !out.ends_with(['.', 'e']) {
                        // `format!("{}", 2.0)` prints "2"; keep it a float on
                        // the wire so round-trips stay type-stable.
                        if !out[out
                            .rfind(|c: char| !c.is_ascii_digit() && c != '-')
                            .map_or(0, |i| i + 1)..]
                            .contains('.')
                        {
                            out.push_str(".0");
                        }
                    }
                } else {
                    // JSON has no NaN/Inf; degrade to null rather than emit
                    // an unparseable token.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Strict parse of exactly one JSON value (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after the value"));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Json {
        i64::try_from(i)
            .map(Json::Int)
            .unwrap_or(Json::Num(i as f64))
    }
}

impl From<u64> for Json {
    fn from(i: u64) -> Json {
        i64::try_from(i)
            .map(Json::Int)
            .unwrap_or(Json::Num(i as f64))
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting depth bound: frames are flat request/response objects, so any
/// input deeper than this is hostile or broken, not a real request.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 advanced past the escape
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape digits"))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for (input, want) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Int(42)),
            ("-7", Json::Int(-7)),
            ("2.5", Json::Num(2.5)),
            ("1e3", Json::Num(1000.0)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            let parsed = Json::parse(input).unwrap();
            assert_eq!(parsed, want, "{input}");
            assert_eq!(Json::parse(&parsed.render()).unwrap(), want, "{input}");
        }
    }

    #[test]
    fn nested_objects_preserve_key_order() {
        let v = Json::obj(vec![
            ("b", Json::Int(1)),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("c", Json::obj(vec![("x", Json::str("y"))])),
        ]);
        let line = v.render();
        assert_eq!(line, r#"{"b":1,"a":[null,true],"c":{"x":"y"}}"#);
        assert_eq!(Json::parse(&line).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode\u{00e9}\u{1F600}";
        let line = Json::Str(s.to_string()).render();
        assert!(!line.contains('\n'), "NDJSON-safe: {line:?}");
        assert_eq!(Json::parse(&line).unwrap(), Json::Str(s.to_string()));
        // Surrogate-pair escapes parse back to the astral char.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
    }

    #[test]
    fn floats_stay_floats_on_the_wire() {
        assert_eq!(Json::Num(2.0).render(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Num(2.0));
        assert_eq!(Json::Int(2).render(), "2");
    }

    #[test]
    fn malformed_inputs_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "[01x]",
            "\"\\q\"",
            "\"\\u12\"",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let bomb = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn getters() {
        let v = Json::parse(r#"{"n":3,"f":1.5,"s":"x","b":true,"a":[1],"o":{}}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("o").is_some_and(Json::is_obj));
        assert!(v.get("missing").is_none());
    }
}
