//! The NDJSON wire protocol: typed requests, typed response frames, and the
//! size-capped frame reader.
//!
//! One request or response per line. Clients send [`RequestEnvelope`] lines;
//! the server answers each with zero or more [`Frame::Progress`] lines
//! followed by exactly one terminal line — [`Frame::Result`] on success or
//! [`Frame::Error`] otherwise. Frames for one request always appear in
//! order; the connection is serviced by a single worker, so frames of
//! different requests never interleave.
//!
//! Malformed lines, unknown requests, and out-of-range parameters are
//! answered with a typed [`ErrorFrame`] and the connection stays open — the
//! worker never panics and never silently drops a frame. Lines longer than
//! the reader's cap are discarded (to the next newline) and answered with
//! [`ErrorKind::FrameTooLarge`].

use crate::json::Json;
use bitlevel_mapping::PaperDesign;
use bitlevel_systolic::{SimBackend, MAX_LANES};
use serde::{Deserialize, Serialize};
use std::io::{self, Read};

/// Default cap on one request line, in bytes. Requests are small typed
/// objects; a megabyte is already three orders of magnitude of headroom.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// Largest matrix dimension `u` the service accepts.
pub const MAX_U: i64 = 8;

/// Largest word length `p` the service accepts for evaluation/campaigns.
pub const MAX_P: usize = 12;

/// Largest word length the service accepts for exploration (the schedule
/// search space grows as `(2p+1)^5`).
pub const MAX_EXPLORE_P: usize = 4;

/// Largest Monte Carlo trial count per request.
pub const MAX_TRIALS: usize = 65_536;

/// Monte Carlo trials per streamed progress chunk.
pub const MC_CHUNK: usize = 64;

/// One of the paper's Section 4.2 matmul designs, as named on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DesignSpec {
    /// Fig. 4: the time-optimal long-wire design.
    TimeOptimal,
    /// Fig. 5: the nearest-neighbour design.
    NearestNeighbour,
}

impl DesignSpec {
    /// Wire name (`"time-optimal"` / `"nearest-neighbour"`).
    pub fn wire_name(&self) -> &'static str {
        match self {
            DesignSpec::TimeOptimal => "time-optimal",
            DesignSpec::NearestNeighbour => "nearest-neighbour",
        }
    }

    /// Parses a wire name.
    pub fn from_wire(s: &str) -> Option<DesignSpec> {
        match s {
            "time-optimal" => Some(DesignSpec::TimeOptimal),
            "nearest-neighbour" => Some(DesignSpec::NearestNeighbour),
            _ => None,
        }
    }

    /// The mapping-crate design this spec names.
    pub fn to_design(self) -> PaperDesign {
        match self {
            DesignSpec::TimeOptimal => PaperDesign::TimeOptimal,
            DesignSpec::NearestNeighbour => PaperDesign::NearestNeighbour,
        }
    }
}

/// Which fault campaign to run and its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CampaignMode {
    /// Exhaustive dual-engine single-fault sweep.
    Single {
        /// Operand/plan seed.
        seed: u64,
    },
    /// Lane-packed exhaustive sweep, `width` cases per compiled walk.
    Batched {
        /// Operand seed.
        seed: u64,
        /// Lane width (clamped to `1..=MAX_LANES` by the engine).
        width: usize,
    },
    /// Seeded Monte Carlo multi-fault campaign, streamed in
    /// [`MC_CHUNK`]-trial chunks.
    MonteCarlo {
        /// Campaign seed.
        seed: u64,
        /// Total trials.
        trials: usize,
        /// Per-point, per-bit transient-flip rate.
        rate: f64,
    },
}

/// A typed request body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Evaluate one paper design on any [`SimBackend`].
    Evaluate {
        /// Matrix dimension.
        u: i64,
        /// Word length.
        p: usize,
        /// Which Section 4.2 design.
        design: DesignSpec,
        /// Which simulation engine.
        backend: SimBackend,
    },
    /// Run the default design-space exploration, streaming frontier points.
    Explore {
        /// Matrix dimension.
        u: i64,
        /// Word length.
        p: usize,
        /// Engine verifying each frontier design.
        backend: SimBackend,
    },
    /// Run a fault campaign, streaming chunk progress where chunked.
    FaultCampaign {
        /// Matrix dimension.
        u: i64,
        /// Word length.
        p: usize,
        /// Which Section 4.2 design.
        design: DesignSpec,
        /// Which campaign.
        mode: CampaignMode,
    },
    /// Server + cache metrics snapshot.
    Stats,
    /// Graceful shutdown: drain in-flight requests, then exit.
    Shutdown,
}

impl Request {
    /// Short tag for metrics and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Evaluate { .. } => "evaluate",
            Request::Explore { .. } => "explore",
            Request::FaultCampaign { .. } => "fault-campaign",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }
}

/// One request line: a client-chosen id, an optional deadline, and the body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Client-chosen correlation id, echoed on every frame of the response.
    pub id: u64,
    /// Cooperative deadline in milliseconds; `None` uses the server default,
    /// `Some(0)` expires before any work starts (a deterministic timeout).
    pub deadline_ms: Option<u64>,
    /// The request body.
    pub request: Request,
}

/// Error taxonomy of the service, as carried in [`ErrorFrame::kind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The line was not a well-formed request object.
    MalformedRequest,
    /// The line exceeded the server's frame-size cap and was discarded.
    FrameTooLarge,
    /// The request parsed but its parameters are unsupported/out of range.
    BadRequest,
    /// The request's deadline expired before the work completed.
    Timeout,
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// The handler failed internally (the worker survives).
    Internal,
}

impl ErrorKind {
    /// Wire string.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorKind::MalformedRequest => "malformed-request",
            ErrorKind::FrameTooLarge => "frame-too-large",
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::Timeout => "timeout",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parses a wire string.
    pub fn from_wire(s: &str) -> Option<ErrorKind> {
        match s {
            "malformed-request" => Some(ErrorKind::MalformedRequest),
            "frame-too-large" => Some(ErrorKind::FrameTooLarge),
            "bad-request" => Some(ErrorKind::BadRequest),
            "timeout" => Some(ErrorKind::Timeout),
            "shutting-down" => Some(ErrorKind::ShuttingDown),
            "internal" => Some(ErrorKind::Internal),
            _ => None,
        }
    }
}

/// A typed error response: what went wrong and a human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorFrame {
    /// The error class.
    pub kind: ErrorKind,
    /// Free-form detail (parse position, offending value, reason).
    pub detail: String,
}

impl ErrorFrame {
    /// Shorthand constructor.
    pub fn new(kind: ErrorKind, detail: impl Into<String>) -> ErrorFrame {
        ErrorFrame {
            kind,
            detail: detail.into(),
        }
    }
}

/// One server→client NDJSON line.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Incremental progress for a long-running request.
    Progress {
        /// The request's id.
        id: u64,
        /// 0-based frame sequence within the request.
        seq: u64,
        /// Stage-specific payload.
        payload: Json,
    },
    /// The terminal success frame.
    Result {
        /// The request's id.
        id: u64,
        /// The request's result payload.
        payload: Json,
    },
    /// The terminal (or line-level) error frame. `id` is `None` when the
    /// offending line was too broken to recover one.
    Error {
        /// The request's id, when recoverable.
        id: Option<u64>,
        /// The typed error.
        error: ErrorFrame,
    },
}

impl Frame {
    /// The NDJSON line for this frame (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Frame::Progress { id, seq, payload } => Json::obj(vec![
                ("id", Json::from(*id)),
                ("frame", Json::str("progress")),
                ("seq", Json::from(*seq)),
                ("payload", payload.clone()),
            ])
            .render(),
            Frame::Result { id, payload } => Json::obj(vec![
                ("id", Json::from(*id)),
                ("frame", Json::str("result")),
                ("payload", payload.clone()),
            ])
            .render(),
            Frame::Error { id, error } => Json::obj(vec![
                ("id", id.map(Json::from).unwrap_or(Json::Null)),
                ("frame", Json::str("error")),
                ("kind", Json::str(error.kind.as_str())),
                ("detail", Json::str(error.detail.clone())),
            ])
            .render(),
        }
    }

    /// Parses one server line back into a frame (the client side).
    pub fn parse(line: &str) -> Result<Frame, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        let tag = v
            .get("frame")
            .and_then(Json::as_str)
            .ok_or("missing \"frame\" tag")?;
        match tag {
            "progress" => Ok(Frame::Progress {
                id: v.get("id").and_then(Json::as_u64).ok_or("missing id")?,
                seq: v.get("seq").and_then(Json::as_u64).ok_or("missing seq")?,
                payload: v.get("payload").cloned().unwrap_or(Json::Null),
            }),
            "result" => Ok(Frame::Result {
                id: v.get("id").and_then(Json::as_u64).ok_or("missing id")?,
                payload: v.get("payload").cloned().unwrap_or(Json::Null),
            }),
            "error" => {
                let kind = v
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(ErrorKind::from_wire)
                    .ok_or("missing or unknown error kind")?;
                Ok(Frame::Error {
                    id: v.get("id").and_then(Json::as_u64),
                    error: ErrorFrame::new(
                        kind,
                        v.get("detail").and_then(Json::as_str).unwrap_or(""),
                    ),
                })
            }
            other => Err(format!("unknown frame tag {other:?}")),
        }
    }

    /// The request id this frame answers, when it carries one.
    pub fn id(&self) -> Option<u64> {
        match self {
            Frame::Progress { id, .. } | Frame::Result { id, .. } => Some(*id),
            Frame::Error { id, .. } => *id,
        }
    }

    /// True for the terminal frames of a request ([`Frame::Result`] and
    /// [`Frame::Error`]).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Frame::Progress { .. })
    }
}

/// Renders a backend for the wire: `"interpreted"`, `"compiled"`,
/// `"compiled-batch:<width>"`, `"partitioned:<workers>"`.
pub fn backend_wire_name(backend: SimBackend) -> String {
    match backend {
        SimBackend::Interpreted => "interpreted".to_string(),
        SimBackend::Compiled => "compiled".to_string(),
        SimBackend::CompiledBatch { width } => format!("compiled-batch:{width}"),
        SimBackend::Partitioned { workers } => format!("partitioned:{workers}"),
    }
}

/// Parses the wire backend names produced by [`backend_wire_name`].
pub fn backend_from_wire(s: &str) -> Option<SimBackend> {
    match s {
        "interpreted" => return Some(SimBackend::Interpreted),
        "compiled" => return Some(SimBackend::Compiled),
        _ => {}
    }
    if let Some(w) = s.strip_prefix("compiled-batch:") {
        return w
            .parse()
            .ok()
            .map(|width| SimBackend::CompiledBatch { width });
    }
    if let Some(k) = s.strip_prefix("partitioned:") {
        return k
            .parse()
            .ok()
            .map(|workers| SimBackend::Partitioned { workers });
    }
    None
}

impl RequestEnvelope {
    /// The NDJSON line for this request (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut pairs = vec![("id", Json::from(self.id))];
        if let Some(d) = self.deadline_ms {
            pairs.push(("deadline_ms", Json::from(d)));
        }
        pairs.push(("request", Json::str(self.request.kind())));
        match &self.request {
            Request::Evaluate {
                u,
                p,
                design,
                backend,
            } => {
                pairs.push(("u", Json::Int(*u)));
                pairs.push(("p", Json::from(*p)));
                pairs.push(("design", Json::str(design.wire_name())));
                pairs.push(("backend", Json::Str(backend_wire_name(*backend))));
            }
            Request::Explore { u, p, backend } => {
                pairs.push(("u", Json::Int(*u)));
                pairs.push(("p", Json::from(*p)));
                pairs.push(("backend", Json::Str(backend_wire_name(*backend))));
            }
            Request::FaultCampaign { u, p, design, mode } => {
                pairs.push(("u", Json::Int(*u)));
                pairs.push(("p", Json::from(*p)));
                pairs.push(("design", Json::str(design.wire_name())));
                match mode {
                    CampaignMode::Single { seed } => {
                        pairs.push(("mode", Json::str("single")));
                        pairs.push(("seed", Json::from(*seed)));
                    }
                    CampaignMode::Batched { seed, width } => {
                        pairs.push(("mode", Json::str("batched")));
                        pairs.push(("seed", Json::from(*seed)));
                        pairs.push(("width", Json::from(*width)));
                    }
                    CampaignMode::MonteCarlo { seed, trials, rate } => {
                        pairs.push(("mode", Json::str("monte-carlo")));
                        pairs.push(("seed", Json::from(*seed)));
                        pairs.push(("trials", Json::from(*trials)));
                        pairs.push(("rate", Json::from(*rate)));
                    }
                }
            }
            Request::Stats | Request::Shutdown => {}
        }
        Json::obj(pairs).render()
    }

    /// Parses one client line. Errors are typed: a line that is not valid
    /// JSON (or not an object with an id) is [`ErrorKind::MalformedRequest`];
    /// a well-formed object with unsupported values is
    /// [`ErrorKind::BadRequest`]. The recovered id (when any) rides along so
    /// the error frame can still be correlated.
    pub fn from_line(line: &str) -> Result<RequestEnvelope, (Option<u64>, ErrorFrame)> {
        let v = Json::parse(line).map_err(|e| {
            (
                None,
                ErrorFrame::new(ErrorKind::MalformedRequest, e.to_string()),
            )
        })?;
        if !v.is_obj() {
            return Err((
                None,
                ErrorFrame::new(ErrorKind::MalformedRequest, "request must be a JSON object"),
            ));
        }
        let id = v.get("id").and_then(Json::as_u64);
        let malformed = |detail: &str| {
            (
                id,
                ErrorFrame::new(ErrorKind::MalformedRequest, detail.to_string()),
            )
        };
        let bad = |detail: String| (id, ErrorFrame::new(ErrorKind::BadRequest, detail));
        let id_val = id.ok_or_else(|| malformed("missing or non-integer \"id\""))?;
        let tag = v
            .get("request")
            .and_then(Json::as_str)
            .ok_or_else(|| malformed("missing \"request\" tag"))?;
        let deadline_ms = match v.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(d) => Some(
                d.as_u64()
                    .ok_or_else(|| malformed("\"deadline_ms\" must be a non-negative integer"))?,
            ),
        };

        let shape = |explore: bool| -> Result<(i64, usize), (Option<u64>, ErrorFrame)> {
            let u = v
                .get("u")
                .and_then(Json::as_i64)
                .ok_or_else(|| malformed("missing integer \"u\""))?;
            let p = v
                .get("p")
                .and_then(Json::as_u64)
                .ok_or_else(|| malformed("missing integer \"p\""))? as usize;
            if !(1..=MAX_U).contains(&u) {
                return Err(bad(format!("u={u} outside 1..={MAX_U}")));
            }
            let p_cap = if explore { MAX_EXPLORE_P } else { MAX_P };
            if !(1..=p_cap).contains(&p) {
                return Err(bad(format!("p={p} outside 1..={p_cap}")));
            }
            Ok((u, p))
        };
        let design = || -> Result<DesignSpec, (Option<u64>, ErrorFrame)> {
            match v.get("design") {
                None => Ok(DesignSpec::TimeOptimal),
                Some(d) => d
                    .as_str()
                    .and_then(DesignSpec::from_wire)
                    .ok_or_else(|| bad(format!("unknown design {d:?}"))),
            }
        };
        let backend = || -> Result<SimBackend, (Option<u64>, ErrorFrame)> {
            match v.get("backend") {
                None => Ok(SimBackend::Compiled),
                Some(b) => b
                    .as_str()
                    .and_then(backend_from_wire)
                    .ok_or_else(|| bad(format!("unknown backend {b:?}"))),
            }
        };
        let seed = || v.get("seed").and_then(Json::as_u64).unwrap_or(0);

        let request = match tag {
            "evaluate" => {
                let (u, p) = shape(false)?;
                Request::Evaluate {
                    u,
                    p,
                    design: design()?,
                    backend: backend()?,
                }
            }
            "explore" => {
                let (u, p) = shape(true)?;
                Request::Explore {
                    u,
                    p,
                    backend: backend()?,
                }
            }
            "fault-campaign" => {
                let (u, p) = shape(false)?;
                let mode = match v.get("mode").and_then(Json::as_str).unwrap_or("single") {
                    "single" => CampaignMode::Single { seed: seed() },
                    "batched" => CampaignMode::Batched {
                        seed: seed(),
                        width: v
                            .get("width")
                            .and_then(Json::as_u64)
                            .map(|w| w as usize)
                            .unwrap_or(MAX_LANES),
                    },
                    "monte-carlo" => {
                        let trials = v
                            .get("trials")
                            .and_then(Json::as_u64)
                            .map(|t| t as usize)
                            .unwrap_or(256);
                        if trials == 0 || trials > MAX_TRIALS {
                            return Err(bad(format!("trials={trials} outside 1..={MAX_TRIALS}")));
                        }
                        let rate = v.get("rate").and_then(Json::as_f64).unwrap_or(1e-3);
                        if !(rate > 0.0 && rate <= 1.0) {
                            return Err(bad(format!("rate={rate} outside (0, 1]")));
                        }
                        CampaignMode::MonteCarlo {
                            seed: seed(),
                            trials,
                            rate,
                        }
                    }
                    other => return Err(bad(format!("unknown campaign mode {other:?}"))),
                };
                Request::FaultCampaign {
                    u,
                    p,
                    design: design()?,
                    mode,
                }
            }
            "stats" => Request::Stats,
            "shutdown" => Request::Shutdown,
            other => return Err(bad(format!("unknown request {other:?}"))),
        };
        Ok(RequestEnvelope {
            id: id_val,
            deadline_ms,
            request,
        })
    }
}

/// What one [`FrameReader::read_frame`] call produced.
#[derive(Debug)]
pub enum ReadFrame {
    /// One complete line (without its newline).
    Frame(String),
    /// A line exceeded the cap; it was discarded up to its newline.
    TooLarge {
        /// Bytes thrown away (best-effort count).
        dropped: usize,
    },
    /// The underlying socket's read timeout elapsed with no complete line —
    /// the poll tick on which the server checks its shutdown flag.
    TimedOut,
    /// The peer closed the connection.
    Eof,
}

/// A newline-delimited frame reader with a hard per-line byte cap.
///
/// Oversized lines do not kill the connection: the reader switches to
/// discard mode, drops bytes until the next newline, reports
/// [`ReadFrame::TooLarge`] once, and resumes normally — satisfying the
/// "typed error, worker stays alive" contract. Socket read timeouts surface
/// as [`ReadFrame::TimedOut`] so callers can poll a shutdown flag between
/// blocking reads.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    max_frame: usize,
    discarding: bool,
    dropped: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `inner` with a per-line cap of `max_frame` bytes.
    pub fn new(inner: R, max_frame: usize) -> FrameReader<R> {
        FrameReader {
            inner,
            buf: Vec::new(),
            max_frame: max_frame.max(1),
            discarding: false,
            dropped: 0,
        }
    }

    /// Reads until one complete line, a cap overflow, a read timeout, or EOF.
    pub fn read_frame(&mut self) -> io::Result<ReadFrame> {
        let mut chunk = [0u8; 4096];
        loop {
            // A complete line already buffered?
            if let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(nl + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                if self.discarding {
                    self.discarding = false;
                    let dropped = self.dropped + line.len();
                    self.dropped = 0;
                    return Ok(ReadFrame::TooLarge { dropped });
                }
                if line.len() > self.max_frame {
                    return Ok(ReadFrame::TooLarge {
                        dropped: line.len(),
                    });
                }
                return Ok(ReadFrame::Frame(
                    String::from_utf8_lossy(&line).into_owned(),
                ));
            }
            // Over the cap with no newline yet: discard until one shows up.
            if !self.discarding && self.buf.len() > self.max_frame {
                self.discarding = true;
                self.dropped = self.buf.len();
                self.buf.clear();
            } else if self.discarding && !self.buf.is_empty() {
                self.dropped += self.buf.len();
                self.buf.clear();
            }
            match self.inner.read(&mut chunk) {
                Ok(0) => return Ok(ReadFrame::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(ReadFrame::TimedOut)
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        let envs = vec![
            RequestEnvelope {
                id: 1,
                deadline_ms: Some(5000),
                request: Request::Evaluate {
                    u: 3,
                    p: 3,
                    design: DesignSpec::TimeOptimal,
                    backend: SimBackend::Compiled,
                },
            },
            RequestEnvelope {
                id: 2,
                deadline_ms: None,
                request: Request::Explore {
                    u: 2,
                    p: 2,
                    backend: SimBackend::Partitioned { workers: 4 },
                },
            },
            RequestEnvelope {
                id: 3,
                deadline_ms: Some(0),
                request: Request::FaultCampaign {
                    u: 2,
                    p: 2,
                    design: DesignSpec::NearestNeighbour,
                    mode: CampaignMode::MonteCarlo {
                        seed: 9,
                        trials: 128,
                        rate: 0.01,
                    },
                },
            },
            RequestEnvelope {
                id: 4,
                deadline_ms: None,
                request: Request::Stats,
            },
            RequestEnvelope {
                id: 5,
                deadline_ms: None,
                request: Request::Shutdown,
            },
        ];
        for env in envs {
            let line = env.to_line();
            let back = RequestEnvelope::from_line(&line).unwrap_or_else(|e| {
                panic!("{line} failed to parse back: {e:?}");
            });
            assert_eq!(back, env, "{line}");
        }
    }

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            Frame::Progress {
                id: 7,
                seq: 0,
                payload: Json::obj(vec![("stage", Json::str("cache"))]),
            },
            Frame::Result {
                id: 7,
                payload: Json::obj(vec![("cycles", Json::Int(13))]),
            },
            Frame::Error {
                id: Some(7),
                error: ErrorFrame::new(ErrorKind::Timeout, "deadline expired"),
            },
            Frame::Error {
                id: None,
                error: ErrorFrame::new(ErrorKind::MalformedRequest, "bad json"),
            },
        ];
        for f in frames {
            let line = f.render();
            assert_eq!(Frame::parse(&line).unwrap(), f, "{line}");
        }
    }

    #[test]
    fn malformed_and_bad_requests_are_typed() {
        // Unparseable line: malformed, no id.
        let (id, e) = RequestEnvelope::from_line("{not json").unwrap_err();
        assert_eq!((id, e.kind), (None, ErrorKind::MalformedRequest));
        // Parseable but missing the tag: malformed, id recovered.
        let (id, e) = RequestEnvelope::from_line(r#"{"id":9}"#).unwrap_err();
        assert_eq!((id, e.kind), (Some(9), ErrorKind::MalformedRequest));
        // Out-of-range parameters: bad request.
        let (id, e) = RequestEnvelope::from_line(r#"{"id":3,"request":"evaluate","u":99,"p":3}"#)
            .unwrap_err();
        assert_eq!((id, e.kind), (Some(3), ErrorKind::BadRequest));
        // Unknown backend: bad request with the value named.
        let (_, e) = RequestEnvelope::from_line(
            r#"{"id":3,"request":"evaluate","u":3,"p":3,"backend":"quantum"}"#,
        )
        .unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadRequest);
        assert!(e.detail.contains("quantum"), "{}", e.detail);
    }

    #[test]
    fn defaults_fill_in() {
        let env =
            RequestEnvelope::from_line(r#"{"id":1,"request":"evaluate","u":3,"p":3}"#).unwrap();
        assert_eq!(
            env.request,
            Request::Evaluate {
                u: 3,
                p: 3,
                design: DesignSpec::TimeOptimal,
                backend: SimBackend::Compiled,
            }
        );
        assert_eq!(env.deadline_ms, None);
    }

    #[test]
    fn frame_reader_splits_lines_and_caps_length() {
        let input = format!("short\r\n{}\nafter\n", "x".repeat(64));
        let mut r = FrameReader::new(input.as_bytes(), 16);
        match r.read_frame().unwrap() {
            ReadFrame::Frame(l) => assert_eq!(l, "short"),
            other => panic!("{other:?}"),
        }
        match r.read_frame().unwrap() {
            ReadFrame::TooLarge { dropped } => assert!(dropped >= 64, "{dropped}"),
            other => panic!("{other:?}"),
        }
        // The worker stays in sync: the next line parses normally.
        match r.read_frame().unwrap() {
            ReadFrame::Frame(l) => assert_eq!(l, "after"),
            other => panic!("{other:?}"),
        }
        match r.read_frame().unwrap() {
            ReadFrame::Eof => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn backend_wire_names_round_trip() {
        for b in [
            SimBackend::Interpreted,
            SimBackend::Compiled,
            SimBackend::CompiledBatch { width: 32 },
            SimBackend::Partitioned { workers: 4 },
        ] {
            assert_eq!(backend_from_wire(&backend_wire_name(b)), Some(b));
        }
        assert_eq!(backend_from_wire("quantum"), None);
    }
}
