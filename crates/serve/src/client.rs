//! A small blocking client for the NDJSON service: connect, send typed
//! requests, stream frames back. Used by the `serve_client` example, the CI
//! smoke step, the E22 load generator, and the test suite.

use crate::json::Json;
use crate::protocol::{Frame, FrameReader, ReadFrame, RequestEnvelope, DEFAULT_MAX_FRAME_BYTES};
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One request's full frame stream, with the raw lines preserved so callers
/// can assert byte-identical responses.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// Every frame of the response, in arrival order, as `(raw line,
    /// parsed frame)`; the last entry is the terminal frame.
    pub frames: Vec<(String, Frame)>,
}

impl Transaction {
    /// The terminal result payload, when the request succeeded.
    pub fn result(&self) -> Option<&Json> {
        match &self.frames.last()?.1 {
            Frame::Result { payload, .. } => Some(payload),
            _ => None,
        }
    }

    /// The terminal error, when the request failed.
    pub fn error(&self) -> Option<&crate::protocol::ErrorFrame> {
        match &self.frames.last()?.1 {
            Frame::Error { error, .. } => Some(error),
            _ => None,
        }
    }

    /// The progress payloads, in order.
    pub fn progress_frames(&self) -> impl Iterator<Item = &Json> {
        self.frames.iter().filter_map(|(_, f)| match f {
            Frame::Progress { payload, .. } => Some(payload),
            _ => None,
        })
    }

    /// The raw line of the terminal frame (for bit-identity assertions).
    pub fn terminal_line(&self) -> Option<&str> {
        self.frames.last().map(|(raw, _)| raw.as_str())
    }
}

/// A blocking NDJSON client over one TCP connection.
#[derive(Debug)]
pub struct ServeClient {
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
}

impl ServeClient {
    /// Connects to the server at `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let writer = TcpStream::connect(addr)?;
        // Request/response lines are small; Nagle + delayed ACK would add
        // tens of milliseconds per round trip.
        writer.set_nodelay(true)?;
        let reader = FrameReader::new(writer.try_clone()?, DEFAULT_MAX_FRAME_BYTES);
        Ok(ServeClient { writer, reader })
    }

    /// Sets a read timeout for [`ServeClient::next_frame`]; `None` blocks
    /// indefinitely.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Sends one typed request line.
    pub fn send(&mut self, env: &RequestEnvelope) -> io::Result<()> {
        self.send_raw(&env.to_line())
    }

    /// Sends one raw line verbatim (the test hook for malformed/oversized
    /// frames).
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        self.writer.write_all(&bytes)
    }

    /// Reads the next frame: `Ok(None)` on clean EOF, an
    /// `io::ErrorKind::TimedOut` error when a read timeout is set and
    /// elapses, and a parse failure as `InvalidData`.
    pub fn next_frame(&mut self) -> io::Result<Option<(String, Frame)>> {
        loop {
            match self.reader.read_frame()? {
                ReadFrame::Frame(raw) => {
                    if raw.trim().is_empty() {
                        continue;
                    }
                    let frame = Frame::parse(&raw).map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unparseable frame {raw:?}: {e}"),
                        )
                    })?;
                    return Ok(Some((raw, frame)));
                }
                ReadFrame::TooLarge { dropped } => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("server frame exceeded the client cap ({dropped} bytes)"),
                    ));
                }
                ReadFrame::TimedOut => {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "no frame within the read timeout",
                    ));
                }
                ReadFrame::Eof => return Ok(None),
            }
        }
    }

    /// Sends `env` and collects frames until its terminal frame (result or
    /// error). Frames for other ids — there are none on a well-behaved
    /// single-threaded connection — are ignored.
    pub fn request_collect(&mut self, env: &RequestEnvelope) -> io::Result<Transaction> {
        self.send(env)?;
        let mut frames = Vec::new();
        loop {
            match self.next_frame()? {
                Some((raw, frame)) => {
                    let terminal = frame.is_terminal();
                    let matches = frame.id().is_none_or(|id| id == env.id);
                    if matches {
                        frames.push((raw, frame));
                        if terminal {
                            return Ok(Transaction { frames });
                        }
                    }
                }
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before the terminal frame",
                    ))
                }
            }
        }
    }
}
