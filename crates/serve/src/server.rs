//! The evaluation service: a TCP listener, a bounded accept queue, a fixed
//! worker pool, and the request handlers.
//!
//! Architecture (DESIGN §4.9):
//!
//! ```text
//! acceptor thread ──► bounded queue (Mutex<VecDeque> + Condvar) ──► N workers
//!                                                                    │
//!                      one Arc-shared CompileCache ◄─────────────────┘
//! ```
//!
//! The acceptor only accepts and enqueues; when the queue is full it blocks
//! (TCP backlog becomes the second-level backpressure). Each worker owns one
//! connection at a time and services its requests strictly in order, so a
//! request's progress frames never interleave with another's. Every handler
//! builds its `DesignFlow` around the server's single [`CompileCache`]
//! (single-flight inside the cache makes N concurrent identical misses cost
//! one compile), and cache attribution per request is reported in a
//! *progress* frame so the terminal result frame stays bit-identical across
//! identical requests regardless of cache temperature.
//!
//! Shutdown is cooperative: the `Shutdown` request (or
//! [`ServerHandle::shutdown`]) flips an atomic flag, nudges the acceptor
//! with a loopback connect, and wakes the queue. Workers finish the request
//! they are on (in-flight work drains), answer any further frames with
//! `shutting-down`, and exit on their next poll tick.

use crate::json::Json;
use crate::metrics::{cache_stats_json, ServerMetrics};
use crate::protocol::{
    CampaignMode, DesignSpec, ErrorFrame, ErrorKind, Frame, FrameReader, ReadFrame, Request,
    RequestEnvelope, DEFAULT_MAX_FRAME_BYTES, MC_CHUNK,
};
use bitlevel_cache::{CacheStats, CompileCache};
use bitlevel_core::{ArchitectureReport, DesignFlow};
use bitlevel_systolic::{NullSink, SimBackend};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server configuration. `Default` gives an ephemeral loopback port, eight
/// workers, a 64-connection accept queue, 1 MiB frames, no default
/// deadline, and a memory-only cache.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `"127.0.0.1:0"` for an ephemeral port.
    pub addr: String,
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Accept-queue capacity; a full queue blocks the acceptor.
    pub queue_cap: usize,
    /// Per-line byte cap; longer lines answer `frame-too-large`.
    pub max_frame_bytes: usize,
    /// Deadline applied when a request carries none (milliseconds);
    /// `0` means unlimited.
    pub default_deadline_ms: u64,
    /// Optional persistent cache directory (`CompileCache::with_disk_dir`).
    pub cache_dir: Option<std::path::PathBuf>,
    /// Socket read-timeout tick on which idle workers re-check the
    /// shutdown flag (milliseconds).
    pub poll_interval_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            queue_cap: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            default_deadline_ms: 0,
            cache_dir: None,
            poll_interval_ms: 100,
        }
    }
}

/// A cooperative per-request deadline, checked at work-chunk boundaries.
#[derive(Debug, Clone, Copy)]
struct Deadline {
    start: Instant,
    limit: Option<Duration>,
}

impl Deadline {
    fn new(request_ms: Option<u64>, default_ms: u64) -> Deadline {
        let limit = match request_ms {
            Some(ms) => Some(Duration::from_millis(ms)),
            None if default_ms > 0 => Some(Duration::from_millis(default_ms)),
            None => None,
        };
        Deadline {
            start: Instant::now(),
            limit,
        }
    }

    /// True once the budget is spent. A zero budget expires before any work
    /// starts — the deterministic immediate timeout used by the tests.
    fn expired(&self) -> bool {
        self.limit.is_some_and(|l| self.start.elapsed() >= l)
    }

    fn timeout_error(&self, stage: &str) -> ErrorFrame {
        ErrorFrame::new(
            ErrorKind::Timeout,
            format!(
                "deadline of {:?} expired at stage {stage:?}",
                self.limit.unwrap_or(Duration::ZERO)
            ),
        )
    }
}

/// Everything the acceptor, workers, and handle share.
struct ServerState {
    config: ServeConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    metrics: ServerMetrics,
    cache: CompileCache,
    cache_at_start: CacheStats,
}

impl ServerState {
    fn trigger_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.queue_cv.notify_all();
            // Unblock the acceptor: a throwaway loopback connection makes
            // `accept` return so it can observe the flag.
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running server: its address, shared cache, metrics, and thread handles.
pub struct ServerHandle {
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds and starts the service described by `config`; returns once the
/// listener, acceptor thread, and worker pool are live.
pub fn serve(config: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let cache = match &config.cache_dir {
        Some(dir) => CompileCache::with_disk_dir(dir),
        None => CompileCache::new(),
    };
    let cache_at_start = cache.snapshot();
    let workers = config.workers.max(1);
    let state = Arc::new(ServerState {
        config,
        addr,
        shutdown: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        metrics: ServerMetrics::new(),
        cache,
        cache_at_start,
    });

    let acceptor = {
        let state = Arc::clone(&state);
        thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(listener, &state))?
    };
    let worker_handles = (0..workers)
        .map(|i| {
            let state = Arc::clone(&state);
            thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&state))
        })
        .collect::<io::Result<Vec<_>>>()?;

    Ok(ServerHandle {
        state,
        acceptor: Some(acceptor),
        workers: worker_handles,
    })
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The server's shared compile cache (for counter assertions).
    pub fn cache(&self) -> &CompileCache {
        &self.state.cache
    }

    /// The server's metrics.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.state.metrics
    }

    /// True once shutdown has been triggered.
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutting_down()
    }

    /// Triggers graceful shutdown (idempotent): in-flight requests finish,
    /// then the acceptor and workers exit.
    pub fn shutdown(&self) {
        self.state.trigger_shutdown();
    }

    /// Blocks until every server thread has exited. Call
    /// [`ServerHandle::shutdown`] first (or send a `Shutdown` request).
    pub fn join(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn accept_loop(listener: TcpListener, state: &ServerState) {
    for stream in listener.incoming() {
        if state.shutting_down() {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let mut q = state.queue.lock().unwrap();
        while q.len() >= state.config.queue_cap && !state.shutting_down() {
            let (guard, _) = state
                .queue_cv
                .wait_timeout(q, Duration::from_millis(200))
                .unwrap();
            q = guard;
        }
        if state.shutting_down() {
            break;
        }
        q.push_back(stream);
        state
            .metrics
            .queue_depth
            .store(q.len() as u64, Ordering::Relaxed);
        state.queue_cv.notify_all();
    }
}

fn worker_loop(state: &ServerState) {
    loop {
        let conn = {
            let mut q = state.queue.lock().unwrap();
            loop {
                if let Some(c) = q.pop_front() {
                    state
                        .metrics
                        .queue_depth
                        .store(q.len() as u64, Ordering::Relaxed);
                    state.queue_cv.notify_all();
                    break c;
                }
                if state.shutting_down() {
                    return;
                }
                let (guard, _) = state
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(200))
                    .unwrap();
                q = guard;
            }
        };
        state.metrics.connections.fetch_add(1, Ordering::Relaxed);
        serve_connection(state, conn);
        if state.shutting_down() {
            return;
        }
    }
}

/// Writes one frame line. A write error means the peer is gone; the caller
/// drops the connection.
fn send(out: &mut TcpStream, frame: &Frame) -> io::Result<()> {
    let mut line = frame.render();
    line.push('\n');
    out.write_all(line.as_bytes())
}

fn serve_connection(state: &ServerState, stream: TcpStream) {
    // Frames are small; Nagle + delayed ACK would add tens of milliseconds
    // of latency to every response line.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        state.config.poll_interval_ms.max(1),
    )));
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = FrameReader::new(reader_stream, state.config.max_frame_bytes);
    let mut out = stream;
    loop {
        match reader.read_frame() {
            Ok(ReadFrame::Frame(line)) => {
                if !handle_line(state, &mut out, &line) {
                    break;
                }
            }
            Ok(ReadFrame::TooLarge { dropped }) => {
                state
                    .metrics
                    .oversized_frames
                    .fetch_add(1, Ordering::Relaxed);
                state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                let frame = Frame::Error {
                    id: None,
                    error: ErrorFrame::new(
                        ErrorKind::FrameTooLarge,
                        format!(
                            "line exceeded the {}-byte cap ({dropped} bytes discarded)",
                            state.config.max_frame_bytes
                        ),
                    ),
                };
                if send(&mut out, &frame).is_err() {
                    break;
                }
            }
            Ok(ReadFrame::TimedOut) => {
                if state.shutting_down() {
                    break;
                }
            }
            Ok(ReadFrame::Eof) | Err(_) => break,
        }
    }
}

/// Handles one request line. Returns `false` when the connection should
/// close (write failure, or the ack of a `Shutdown` request).
fn handle_line(state: &ServerState, out: &mut TcpStream, line: &str) -> bool {
    if line.trim().is_empty() {
        return true;
    }
    let env = match RequestEnvelope::from_line(line) {
        Ok(env) => env,
        Err((id, error)) => {
            match error.kind {
                ErrorKind::MalformedRequest => {
                    state
                        .metrics
                        .malformed_frames
                        .fetch_add(1, Ordering::Relaxed);
                }
                _ => state.metrics.count_request("other"),
            }
            state.metrics.errors.fetch_add(1, Ordering::Relaxed);
            return send(out, &Frame::Error { id, error }).is_ok();
        }
    };
    if state.shutting_down() {
        state.metrics.errors.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Error {
            id: Some(env.id),
            error: ErrorFrame::new(ErrorKind::ShuttingDown, "server is draining"),
        };
        return send(out, &frame).is_ok();
    }

    state.metrics.count_request(env.request.kind());
    if matches!(env.request, Request::Shutdown) {
        let ack = Frame::Result {
            id: env.id,
            payload: Json::obj(vec![("shutting_down", Json::Bool(true))]),
        };
        let _ = send(out, &ack);
        state.trigger_shutdown();
        return false;
    }

    state.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    let deadline = Deadline::new(env.deadline_ms, state.config.default_deadline_ms);
    let mut ctx = RequestCtx {
        state,
        out,
        id: env.id,
        seq: 0,
        write_failed: false,
    };
    let result = dispatch(state, &mut ctx, &env.request, &deadline);
    let write_failed = ctx.write_failed;
    let terminal = match result {
        Ok(payload) => Frame::Result {
            id: env.id,
            payload,
        },
        Err(error) => {
            state.metrics.errors.fetch_add(1, Ordering::Relaxed);
            if error.kind == ErrorKind::Timeout {
                state.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
            }
            Frame::Error {
                id: Some(env.id),
                error,
            }
        }
    };
    let sent = send(out, &terminal).is_ok();
    state
        .metrics
        .record_latency_us(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
    state.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    sent && !write_failed
}

/// Per-request streaming context: sequenced progress frames on the
/// connection's socket.
struct RequestCtx<'a> {
    state: &'a ServerState,
    out: &'a mut TcpStream,
    id: u64,
    seq: u64,
    write_failed: bool,
}

impl RequestCtx<'_> {
    fn progress(&mut self, payload: Json) {
        if self.write_failed {
            return;
        }
        let frame = Frame::Progress {
            id: self.id,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.state
            .metrics
            .progress_frames
            .fetch_add(1, Ordering::Relaxed);
        if send(self.out, &frame).is_err() {
            self.write_failed = true;
        }
    }
}

fn dispatch(
    state: &ServerState,
    ctx: &mut RequestCtx<'_>,
    request: &Request,
    deadline: &Deadline,
) -> Result<Json, ErrorFrame> {
    match request {
        Request::Evaluate {
            u,
            p,
            design,
            backend,
        } => handle_evaluate(state, ctx, *u, *p, *design, *backend, deadline),
        Request::Explore { u, p, backend } => {
            handle_explore(state, ctx, *u, *p, *backend, deadline)
        }
        Request::FaultCampaign { u, p, design, mode } => {
            handle_campaign(state, ctx, *u, *p, *design, *mode, deadline)
        }
        Request::Stats => Ok(state
            .metrics
            .render(&state.cache.snapshot(), &state.cache_at_start)),
        Request::Shutdown => unreachable!("handled before dispatch"),
    }
}

fn flow_for(
    state: &ServerState,
    u: i64,
    p: usize,
    backend: SimBackend,
) -> Result<DesignFlow, ErrorFrame> {
    DesignFlow::matmul(u, p)
        .with_cache(state.cache.clone())
        .with_validated_backend(backend)
        .map_err(|e| ErrorFrame::new(ErrorKind::BadRequest, e.to_string()))
}

fn handle_evaluate(
    state: &ServerState,
    ctx: &mut RequestCtx<'_>,
    u: i64,
    p: usize,
    design: DesignSpec,
    backend: SimBackend,
    deadline: &Deadline,
) -> Result<Json, ErrorFrame> {
    if deadline.expired() {
        return Err(deadline.timeout_error("evaluate"));
    }
    let flow = flow_for(state, u, p, backend)?;
    let before = state.cache.snapshot();
    let rep = flow.evaluate_paper_design(design.to_design());
    let after = state.cache.snapshot();
    if rep.backend_used.is_fallback() {
        state.metrics.fallbacks.fetch_add(1, Ordering::Relaxed);
    }
    // Cache attribution is request-history-dependent, so it rides in a
    // progress frame; the result frame below holds only request-determined
    // fields and is bit-identical across identical requests.
    ctx.progress(Json::obj(vec![
        ("stage", Json::str("cache")),
        (
            "outcome",
            rep.cache
                .as_ref()
                .map(|c| Json::str(c.outcome.clone()))
                .unwrap_or(Json::Null),
        ),
        ("delta", cache_stats_json(&after.delta(&before))),
    ]));
    Ok(report_payload(&rep))
}

fn handle_explore(
    state: &ServerState,
    ctx: &mut RequestCtx<'_>,
    u: i64,
    p: usize,
    backend: SimBackend,
    deadline: &Deadline,
) -> Result<Json, ErrorFrame> {
    if deadline.expired() {
        return Err(deadline.timeout_error("explore"));
    }
    let flow = flow_for(state, u, p, backend)?;
    let (spaces, config) = flow.default_exploration();
    let report = flow
        .explore_streamed(&spaces, &config, &mut NullSink, |pt| {
            ctx.progress(Json::obj(vec![
                ("stage", Json::str("frontier-point")),
                ("name", Json::str(pt.report.name.clone())),
                ("machine", Json::str(pt.point.machine.clone())),
                ("time", Json::Int(pt.point.time)),
                ("processors", Json::from(pt.point.processors)),
                ("physical_pes", Json::from(pt.point.physical_pes)),
                ("physical_time", Json::Int(pt.point.physical_time)),
                ("wire", Json::Int(pt.point.max_wire_length)),
                ("verified", Json::Bool(pt.verified())),
            ]));
        })
        .map_err(|e| ErrorFrame::new(ErrorKind::Internal, e.to_string()))?;
    for d in &report.designs {
        if d.report.backend_used.is_fallback() {
            state.metrics.fallbacks.fetch_add(1, Ordering::Relaxed);
        }
    }
    if deadline.expired() {
        return Err(deadline.timeout_error("explore-verify"));
    }
    let frontier: Vec<Json> = report
        .designs
        .iter()
        .map(|d| {
            Json::obj(vec![
                ("machine", Json::str(d.point.machine.clone())),
                ("time", Json::Int(d.point.time)),
                ("processors", Json::from(d.point.processors)),
                ("physical_pes", Json::from(d.point.physical_pes)),
                ("physical_time", Json::Int(d.point.physical_time)),
                ("wire", Json::Int(d.point.max_wire_length)),
                ("cycles", Json::Int(d.report.run.cycles)),
                ("backend", Json::Str(d.report.backend_used.to_string())),
                ("verified", Json::Bool(d.verified())),
            ])
        })
        .collect();
    Ok(Json::obj(vec![
        ("designs", Json::from(report.designs.len())),
        ("all_verified", Json::Bool(report.all_verified())),
        ("frontier", Json::Arr(frontier)),
        (
            "stats",
            Json::obj(vec![
                ("spaces", Json::from(report.stats.spaces)),
                ("machines", Json::from(report.stats.machines)),
                ("exhaustive", json_u128(report.stats.exhaustive)),
                ("full_checks", json_u128(report.stats.full_checks)),
                ("pruned_pairs", Json::from(report.stats.pruned_pairs)),
                ("feasible_pairs", Json::from(report.stats.feasible_pairs)),
            ]),
        ),
    ]))
}

fn handle_campaign(
    state: &ServerState,
    ctx: &mut RequestCtx<'_>,
    u: i64,
    p: usize,
    design: DesignSpec,
    mode: CampaignMode,
    deadline: &Deadline,
) -> Result<Json, ErrorFrame> {
    if deadline.expired() {
        return Err(deadline.timeout_error("fault-campaign"));
    }
    let flow = flow_for(state, u, p, SimBackend::Compiled)?;
    let paper = design.to_design();
    match mode {
        CampaignMode::Single { seed } => {
            let rep = flow.single_fault_campaign(paper, seed);
            ctx.progress(Json::obj(vec![
                ("stage", Json::str("campaign")),
                ("cases", Json::from(rep.total)),
            ]));
            Ok(Json::obj(vec![
                ("mode", Json::str("single")),
                ("design", Json::str(rep.design.clone())),
                ("seed", Json::from(rep.seed)),
                ("total", Json::from(rep.total)),
                ("masked", Json::from(rep.masked)),
                ("detected", Json::from(rep.detected)),
                ("sdc", Json::from(rep.sdc)),
                ("engine_mismatches", Json::from(rep.engine_mismatches)),
                (
                    "classifications_partition",
                    Json::Bool(rep.classifications_partition()),
                ),
            ]))
        }
        CampaignMode::Batched { seed, width } => {
            let rep = flow.batched_single_fault_campaign(paper, seed, width);
            ctx.progress(Json::obj(vec![
                ("stage", Json::str("campaign")),
                ("cases", Json::from(rep.total)),
                ("walks", Json::from(rep.walks)),
            ]));
            Ok(Json::obj(vec![
                ("mode", Json::str("batched")),
                ("design", Json::str(rep.design.clone())),
                ("seed", Json::from(rep.seed)),
                ("width", Json::from(rep.width)),
                ("walks", Json::from(rep.walks)),
                ("total", Json::from(rep.total)),
                ("masked", Json::from(rep.masked)),
                ("detected", Json::from(rep.detected)),
                ("sdc", Json::from(rep.sdc)),
                (
                    "classifications_partition",
                    Json::Bool(rep.classifications_partition()),
                ),
            ]))
        }
        CampaignMode::MonteCarlo { seed, trials, rate } => {
            // Chunked so long campaigns stream progress and honour their
            // deadline between chunks. Chunk i reseeds with `seed + i`, so a
            // given (seed, trials, rate) request is deterministic regardless
            // of chunk boundaries chosen here.
            let (mut done, mut masked, mut detected, mut sdc, mut mismatches) = (0, 0, 0, 0, 0);
            let mut chunks = 0u64;
            while done < trials {
                if deadline.expired() {
                    return Err(deadline.timeout_error("monte-carlo-chunk"));
                }
                let n = MC_CHUNK.min(trials - done);
                let rep = flow.monte_carlo_campaign(paper, seed + chunks, n, rate);
                done += n;
                masked += rep.masked;
                detected += rep.detected;
                sdc += rep.sdc;
                mismatches += rep.engine_mismatches;
                chunks += 1;
                ctx.progress(Json::obj(vec![
                    ("stage", Json::str("campaign-chunk")),
                    ("trials_done", Json::from(done)),
                    ("trials", Json::from(trials)),
                    ("masked", Json::from(masked)),
                    ("detected", Json::from(detected)),
                    ("sdc", Json::from(sdc)),
                ]));
            }
            Ok(Json::obj(vec![
                ("mode", Json::str("monte-carlo")),
                ("design", Json::str(paper.name())),
                ("seed", Json::from(seed)),
                ("rate", Json::from(rate)),
                ("trials", Json::from(trials)),
                ("chunks", Json::from(chunks)),
                ("masked", Json::from(masked)),
                ("detected", Json::from(detected)),
                ("sdc", Json::from(sdc)),
                ("engine_mismatches", Json::from(mismatches)),
            ]))
        }
    }
}

/// The deterministic result payload of an evaluation: every field is a pure
/// function of the request, so identical requests produce byte-identical
/// frames (cache temperature and timing live in the progress frames).
fn report_payload(rep: &ArchitectureReport) -> Json {
    Json::obj(vec![
        ("name", Json::str(rep.name.clone())),
        ("feasible", Json::Bool(rep.feasible)),
        (
            "violations",
            Json::Arr(
                rep.violations
                    .iter()
                    .map(|v| Json::str(v.clone()))
                    .collect(),
            ),
        ),
        ("cycles", Json::Int(rep.run.cycles)),
        ("processors", Json::from(rep.run.processors)),
        ("computations", json_u128(rep.run.computations)),
        ("conflict_free", Json::Bool(rep.run.conflict_free)),
        ("causality_ok", Json::Bool(rep.run.causality_ok)),
        ("utilization", Json::Num(rep.run.utilization)),
        ("peak_parallelism", Json::from(rep.run.peak_parallelism)),
        (
            "link_traffic",
            Json::Arr(
                rep.run
                    .link_traffic
                    .iter()
                    .map(|&t| Json::from(t))
                    .collect(),
            ),
        ),
        ("buffer_cycles", Json::from(rep.run.buffer_cycles)),
        (
            "closed_form_cycles",
            rep.closed_form_cycles.map(Json::Int).unwrap_or(Json::Null),
        ),
        ("max_wire_length", Json::Int(rep.max_wire_length)),
        ("backend", Json::Str(rep.backend_used.to_string())),
    ])
}

/// `u128` counters render as exact integers when they fit `i64`, otherwise
/// as decimal strings (JSON numbers would lose precision).
fn json_u128(v: u128) -> Json {
    i64::try_from(v)
        .map(Json::Int)
        .unwrap_or_else(|_| Json::Str(v.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ServeClient;

    fn test_server() -> ServerHandle {
        serve(ServeConfig {
            poll_interval_ms: 10,
            ..ServeConfig::default()
        })
        .expect("bind ephemeral test server")
    }

    fn evaluate_req(id: u64) -> RequestEnvelope {
        RequestEnvelope {
            id,
            deadline_ms: None,
            request: Request::Evaluate {
                u: 3,
                p: 3,
                design: DesignSpec::TimeOptimal,
                backend: SimBackend::Compiled,
            },
        }
    }

    #[test]
    fn evaluate_streams_cache_progress_then_deterministic_result() {
        let server = test_server();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        let t = client.request_collect(&evaluate_req(1)).unwrap();
        assert!(t.frames.len() >= 2, "progress + result, got {t:?}");
        match &t.frames[0].1 {
            Frame::Progress { payload, .. } => {
                assert_eq!(
                    payload.get("stage").and_then(Json::as_str),
                    Some("cache"),
                    "{payload:?}"
                );
            }
            other => panic!("expected progress frame, got {other:?}"),
        }
        let result = t.result().expect("terminal result frame");
        assert_eq!(result.get("cycles").and_then(Json::as_i64), Some(13));
        assert_eq!(result.get("processors").and_then(Json::as_i64), Some(81));
        assert_eq!(
            result.get("backend").and_then(Json::as_str),
            Some("compiled")
        );
        assert!(result.get("feasible").and_then(Json::as_bool).unwrap());
        server.shutdown();
        server.join();
    }

    #[test]
    fn malformed_oversized_and_unknown_lines_keep_the_worker_alive() {
        let server = serve(ServeConfig {
            max_frame_bytes: 256,
            poll_interval_ms: 10,
            ..ServeConfig::default()
        })
        .unwrap();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();

        // Malformed JSON → typed error, no id.
        client.send_raw("this is not json").unwrap();
        let (_, f) = client.next_frame().unwrap().unwrap();
        match f {
            Frame::Error { id: None, error } => {
                assert_eq!(error.kind, ErrorKind::MalformedRequest)
            }
            other => panic!("{other:?}"),
        }

        // Oversized line → typed frame-too-large.
        let big = format!(r#"{{"id":5,"pad":"{}"}}"#, "y".repeat(1024));
        client.send_raw(&big).unwrap();
        let (_, f) = client.next_frame().unwrap().unwrap();
        match f {
            Frame::Error { error, .. } => assert_eq!(error.kind, ErrorKind::FrameTooLarge),
            other => panic!("{other:?}"),
        }

        // Unknown request tag → typed bad-request carrying the id.
        client.send_raw(r#"{"id":6,"request":"dance"}"#).unwrap();
        let (_, f) = client.next_frame().unwrap().unwrap();
        match f {
            Frame::Error { id: Some(6), error } => {
                assert_eq!(error.kind, ErrorKind::BadRequest)
            }
            other => panic!("{other:?}"),
        }

        // The same connection's worker still answers real work.
        let t = client.request_collect(&evaluate_req(7)).unwrap();
        assert_eq!(
            t.result().unwrap().get("cycles").and_then(Json::as_i64),
            Some(13)
        );
        assert_eq!(server.metrics().oversized_frames.load(Ordering::Relaxed), 1);
        assert_eq!(server.metrics().malformed_frames.load(Ordering::Relaxed), 1);
        server.shutdown();
        server.join();
    }

    #[test]
    fn zero_deadline_returns_typed_timeout_frame() {
        let server = test_server();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        let mut req = evaluate_req(11);
        req.deadline_ms = Some(0);
        let t = client.request_collect(&req).unwrap();
        match &t.frames.last().unwrap().1 {
            Frame::Error {
                id: Some(11),
                error,
            } => {
                assert_eq!(error.kind, ErrorKind::Timeout, "{error:?}");
                assert!(error.detail.contains("deadline"), "{}", error.detail);
            }
            other => panic!("expected timeout frame, got {other:?}"),
        }
        assert_eq!(server.metrics().timeouts.load(Ordering::Relaxed), 1);
        server.shutdown();
        server.join();
    }

    #[test]
    fn explore_streams_frontier_points_before_the_result() {
        let server = test_server();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        let t = client
            .request_collect(&RequestEnvelope {
                id: 21,
                deadline_ms: None,
                request: Request::Explore {
                    u: 2,
                    p: 2,
                    backend: SimBackend::Compiled,
                },
            })
            .unwrap();
        let result = t.result().expect("result frame");
        let designs = result.get("designs").and_then(Json::as_u64).unwrap();
        let points = t
            .progress_frames()
            .filter(|p| p.get("stage").and_then(Json::as_str) == Some("frontier-point"))
            .count() as u64;
        assert!(designs > 0, "{result:?}");
        assert_eq!(points, designs, "one progress frame per frontier design");
        assert_eq!(
            result.get("all_verified").and_then(Json::as_bool),
            Some(true)
        );
        server.shutdown();
        server.join();
    }

    #[test]
    fn monte_carlo_campaign_streams_chunks_and_aggregates() {
        let server = test_server();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        let t = client
            .request_collect(&RequestEnvelope {
                id: 31,
                deadline_ms: None,
                request: Request::FaultCampaign {
                    u: 2,
                    p: 2,
                    design: DesignSpec::TimeOptimal,
                    mode: CampaignMode::MonteCarlo {
                        seed: 7,
                        trials: 130,
                        rate: 0.01,
                    },
                },
            })
            .unwrap();
        let result = t.result().expect("result frame");
        assert_eq!(result.get("trials").and_then(Json::as_u64), Some(130));
        assert_eq!(result.get("chunks").and_then(Json::as_u64), Some(3));
        let total = result.get("masked").and_then(Json::as_u64).unwrap()
            + result.get("detected").and_then(Json::as_u64).unwrap()
            + result.get("sdc").and_then(Json::as_u64).unwrap();
        assert_eq!(total, 130, "classifications partition the trials");
        assert_eq!(t.progress_frames().count(), 3, "one frame per chunk");
        server.shutdown();
        server.join();
    }

    #[test]
    fn stats_reports_cache_delta_and_shutdown_request_drains() {
        let server = test_server();
        let addr = server.local_addr();
        let mut client = ServeClient::connect(addr).unwrap();
        client.request_collect(&evaluate_req(41)).unwrap();
        let t = client
            .request_collect(&RequestEnvelope {
                id: 42,
                deadline_ms: None,
                request: Request::Stats,
            })
            .unwrap();
        let stats = t.result().expect("stats payload");
        assert!(stats.get("requests").and_then(Json::as_u64).unwrap() >= 2);
        let delta = stats.get("cache_delta").unwrap();
        assert_eq!(
            delta.get("misses").and_then(Json::as_u64),
            Some(1),
            "one compile since server start: {delta:?}"
        );
        // Graceful shutdown over the wire.
        let t = client
            .request_collect(&RequestEnvelope {
                id: 43,
                deadline_ms: None,
                request: Request::Shutdown,
            })
            .unwrap();
        assert_eq!(
            t.result()
                .unwrap()
                .get("shutting_down")
                .and_then(Json::as_bool),
            Some(true)
        );
        server.join();
        // The listener is gone: new connections are refused (or reset).
        assert!(
            ServeClient::connect(addr)
                .and_then(|mut c| c.request_collect(&evaluate_req(44)))
                .is_err(),
            "server must be down after shutdown"
        );
    }
}
