//! `bitlevel-serve` — the evaluation service binary.
//!
//! ```text
//! bitlevel-serve [--addr HOST:PORT] [--cache-dir DIR] [--workers N]
//!                [--queue-cap N] [--max-frame-bytes N] [--deadline-ms MS]
//!                [--poll-interval-ms MS] [--addr-file PATH]
//! ```
//!
//! Binds, prints `listening on <addr>` (and writes the resolved address to
//! `--addr-file`, which is how scripts discover an ephemeral `:0` port),
//! then serves until a `Shutdown` request arrives.

use bitlevel_serve::{serve, ServeConfig};
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: bitlevel-serve [--addr HOST:PORT] [--cache-dir DIR] [--workers N] \
         [--queue-cap N] [--max-frame-bytes N] [--deadline-ms MS] \
         [--poll-interval-ms MS] [--addr-file PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServeConfig::default();
    let mut addr_file: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--help" | "-h" => usage(),
            "--addr" | "--cache-dir" | "--addr-file" | "--workers" | "--queue-cap"
            | "--max-frame-bytes" | "--deadline-ms" | "--poll-interval-ms" => {
                i += 1;
                let value = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("{flag} requires a value");
                    usage();
                });
                match flag {
                    "--addr" => config.addr = value,
                    "--cache-dir" => config.cache_dir = Some(value.into()),
                    "--addr-file" => addr_file = Some(value),
                    "--workers" => config.workers = parse_num(&value, flag),
                    "--queue-cap" => config.queue_cap = parse_num(&value, flag),
                    "--max-frame-bytes" => config.max_frame_bytes = parse_num(&value, flag),
                    "--deadline-ms" => config.default_deadline_ms = parse_num(&value, flag),
                    "--poll-interval-ms" => config.poll_interval_ms = parse_num(&value, flag),
                    _ => unreachable!(),
                }
            }
            other => {
                eprintln!("unknown option {other}");
                usage();
            }
        }
        i += 1;
    }

    let handle = match serve(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = handle.local_addr();
    println!("listening on {addr}");
    let _ = std::io::stdout().flush();
    if let Some(path) = addr_file {
        if let Err(e) = std::fs::write(&path, format!("{addr}\n")) {
            eprintln!("could not write {path}: {e}");
        }
    }
    handle.join();
    println!("shut down");
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: invalid value {s:?}");
        usage();
    })
}
