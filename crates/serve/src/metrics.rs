//! Server-side observability: lock-free counters answered by the `Stats`
//! request.
//!
//! Everything here is an atomic so concurrent handlers never serialise on a
//! metrics lock; the cache hit/miss attribution rides on
//! [`CacheStats::delta`] against the snapshot taken when the server started,
//! so it cannot race between handlers either (satellite 2 of the service
//! issue).

use crate::json::Json;
use bitlevel_cache::CacheStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative counters and gauges for one server instance.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests fully processed (any terminal frame sent).
    pub requests: AtomicU64,
    /// `evaluate` requests processed.
    pub evaluate_requests: AtomicU64,
    /// `explore` requests processed.
    pub explore_requests: AtomicU64,
    /// `fault-campaign` requests processed.
    pub campaign_requests: AtomicU64,
    /// `stats` requests processed.
    pub stats_requests: AtomicU64,
    /// Requests answered with an error frame (any kind).
    pub errors: AtomicU64,
    /// Requests answered with a `timeout` error frame.
    pub timeouts: AtomicU64,
    /// Lines rejected as oversized (`frame-too-large`).
    pub oversized_frames: AtomicU64,
    /// Lines rejected as malformed.
    pub malformed_frames: AtomicU64,
    /// Progress frames streamed.
    pub progress_frames: AtomicU64,
    /// Evaluations that degraded to a fallback engine
    /// (`BackendUsed::is_fallback`).
    pub fallbacks: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests currently being handled (gauge).
    pub in_flight: AtomicU64,
    /// Connections currently waiting in the accept queue (gauge).
    pub queue_depth: AtomicU64,
    /// Sum of per-request wall latencies, microseconds.
    pub total_latency_us: AtomicU64,
    /// Largest single-request wall latency, microseconds.
    pub max_latency_us: AtomicU64,
}

impl ServerMetrics {
    /// Fresh all-zero metrics.
    pub fn new() -> ServerMetrics {
        ServerMetrics::default()
    }

    /// Bumps the per-kind request counter for `kind` (a
    /// [`crate::protocol::Request::kind`] tag).
    pub fn count_request(&self, kind: &str) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let counter = match kind {
            "evaluate" => &self.evaluate_requests,
            "explore" => &self.explore_requests,
            "fault-campaign" => &self.campaign_requests,
            _ => &self.stats_requests,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one finished request's wall latency.
    pub fn record_latency_us(&self, us: u64) {
        self.total_latency_us.fetch_add(us, Ordering::Relaxed);
        self.max_latency_us.fetch_max(us, Ordering::Relaxed);
    }

    /// The `Stats` payload: server counters plus the cache counters, both
    /// absolute (`cache`) and as the delta accumulated since the server
    /// started (`cache_delta`).
    pub fn render(&self, cache_now: &CacheStats, cache_at_start: &CacheStats) -> Json {
        let delta = cache_now.delta(cache_at_start);
        let requests = self.requests.load(Ordering::Relaxed);
        let total_us = self.total_latency_us.load(Ordering::Relaxed);
        let mean_us = if requests > 0 {
            total_us as f64 / requests as f64
        } else {
            0.0
        };
        Json::obj(vec![
            ("requests", Json::from(requests)),
            (
                "evaluate_requests",
                Json::from(self.evaluate_requests.load(Ordering::Relaxed)),
            ),
            (
                "explore_requests",
                Json::from(self.explore_requests.load(Ordering::Relaxed)),
            ),
            (
                "campaign_requests",
                Json::from(self.campaign_requests.load(Ordering::Relaxed)),
            ),
            (
                "stats_requests",
                Json::from(self.stats_requests.load(Ordering::Relaxed)),
            ),
            ("errors", Json::from(self.errors.load(Ordering::Relaxed))),
            (
                "timeouts",
                Json::from(self.timeouts.load(Ordering::Relaxed)),
            ),
            (
                "oversized_frames",
                Json::from(self.oversized_frames.load(Ordering::Relaxed)),
            ),
            (
                "malformed_frames",
                Json::from(self.malformed_frames.load(Ordering::Relaxed)),
            ),
            (
                "progress_frames",
                Json::from(self.progress_frames.load(Ordering::Relaxed)),
            ),
            (
                "fallbacks",
                Json::from(self.fallbacks.load(Ordering::Relaxed)),
            ),
            (
                "connections",
                Json::from(self.connections.load(Ordering::Relaxed)),
            ),
            (
                "in_flight",
                Json::from(self.in_flight.load(Ordering::Relaxed)),
            ),
            (
                "queue_depth",
                Json::from(self.queue_depth.load(Ordering::Relaxed)),
            ),
            ("mean_latency_us", Json::Num(mean_us)),
            (
                "max_latency_us",
                Json::from(self.max_latency_us.load(Ordering::Relaxed)),
            ),
            ("cache", cache_stats_json(cache_now)),
            ("cache_delta", cache_stats_json(&delta)),
        ])
    }
}

/// Renders a [`CacheStats`] snapshot (or delta) as a JSON object.
pub fn cache_stats_json(s: &CacheStats) -> Json {
    Json::obj(vec![
        ("hits", Json::from(s.hits)),
        ("disk_hits", Json::from(s.disk_hits)),
        ("misses", Json::from(s.misses)),
        ("evictions", Json::from(s.evictions)),
        ("corrupt_entries", Json::from(s.corrupt_entries)),
        ("disk_write_errors", Json::from(s.disk_write_errors)),
        ("resident", Json::from(s.resident)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_payload_reports_counters_and_cache_delta() {
        let m = ServerMetrics::new();
        m.count_request("evaluate");
        m.count_request("stats");
        m.errors.fetch_add(1, Ordering::Relaxed);
        m.record_latency_us(100);
        m.record_latency_us(300);

        let start = CacheStats {
            hits: 2,
            misses: 1,
            ..CacheStats::default()
        };
        let now = CacheStats {
            hits: 9,
            misses: 2,
            resident: 2,
            ..CacheStats::default()
        };
        let payload = m.render(&now, &start);
        assert_eq!(payload.get("requests").and_then(Json::as_u64), Some(2));
        assert_eq!(
            payload.get("evaluate_requests").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(payload.get("errors").and_then(Json::as_u64), Some(1));
        assert_eq!(
            payload.get("mean_latency_us").and_then(Json::as_f64),
            Some(200.0)
        );
        assert_eq!(
            payload.get("max_latency_us").and_then(Json::as_u64),
            Some(300)
        );
        let delta = payload.get("cache_delta").unwrap();
        assert_eq!(delta.get("hits").and_then(Json::as_u64), Some(7));
        assert_eq!(delta.get("misses").and_then(Json::as_u64), Some(1));
        assert_eq!(
            payload
                .get("cache")
                .and_then(|c| c.get("hits"))
                .and_then(Json::as_u64),
            Some(9)
        );
    }
}
