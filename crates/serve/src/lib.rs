#![warn(missing_docs)]

//! # bitlevel-serve
//!
//! A long-running evaluation service over the shared compile cache — the
//! "serving heavy traffic" half of ROADMAP item 4.
//!
//! The server speaks newline-delimited JSON over plain TCP
//! (`std::net::TcpListener`; the offline build has no async runtime, so
//! concurrency is a bounded worker-thread pool behind a connection-accept
//! queue). Typed requests cover:
//!
//! * `Evaluate` — one Section 4.2 paper design on any
//!   [`bitlevel_systolic::SimBackend`] (compiled, interpreted, lane-packed
//!   batch, LSGP-partitioned);
//! * `Explore` — the default design-space exploration, each verified
//!   frontier point streamed as a progress frame the moment it is found;
//! * `FaultCampaign` — exhaustive single-fault, lane-packed batched, or
//!   chunk-streamed Monte Carlo campaigns;
//! * `Stats` — server metrics plus compile-cache counters (absolute and as
//!   a delta since server start);
//! * `Shutdown` — graceful drain: in-flight requests finish, then every
//!   thread exits.
//!
//! Every handler routes compilation through **one**
//! [`bitlevel_cache::CompileCache`] (injected via `DesignFlow::with_cache`),
//! whose single-flight lookup makes N concurrent identical requests cost
//! exactly one compile. Result frames carry only request-determined fields —
//! cache temperature and timing ride in progress frames — so identical
//! requests yield byte-identical terminal lines.
//!
//! The wire layer is hand-rolled on [`json::Json`] because the offline
//! build's `serde_json` stub is inert; the typed protocol structs still
//! derive serde for CI builds with the real crates.

pub mod client;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use client::{ServeClient, Transaction};
pub use json::{Json, JsonError};
pub use metrics::ServerMetrics;
pub use protocol::{
    backend_from_wire, backend_wire_name, CampaignMode, DesignSpec, ErrorFrame, ErrorKind, Frame,
    FrameReader, ReadFrame, Request, RequestEnvelope, DEFAULT_MAX_FRAME_BYTES,
};
pub use server::{serve, ServeConfig, ServerHandle};
