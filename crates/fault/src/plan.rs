//! Seed-deterministic fault plans.
//!
//! A [`FaultPlan`] is the serializable *description* of a fault experiment:
//! targeted faults pinned to `(pe, cycle)` plus rate-sampled random faults
//! drawn from a seeded counter-based generator. [`FaultPlan::resolve`]
//! lowers the description against a concrete algorithm and space–time
//! mapping into a [`ResolvedFaultPlan`] — a pure lookup structure that
//! implements [`FaultInjector`], so the same resolved plan perturbs the
//! interpreted clocked engine, the mapped timing simulator and the compiled
//! backend bit-identically.
//!
//! Sampling is counter-based (splitmix64 keyed by `(seed, fault index,
//! point rank)`), not sequential: whether point 17 draws a fault never
//! depends on how many points came before it, so resolution order — and
//! therefore engine traversal order — cannot perturb the outcome.

use std::collections::{HashMap, HashSet};

use bitlevel_ir::AlgorithmTriplet;
use bitlevel_linalg::IVec;
use bitlevel_mapping::MappingMatrix;
use bitlevel_systolic::{FaultInjector, FaultableBundle, TransferFault};
use serde::{Deserialize, Serialize};

/// One kind of hardware misbehaviour. Bit indices address
/// [`FaultableBundle`] signal bits; column indices address dependence
/// columns in the algorithm's composed order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// One output signal bit inverted for one firing.
    TransientFlip {
        /// The [`FaultableBundle`] bit to invert.
        bit: usize,
    },
    /// One output signal bit forced to `value` (stuck-at-0/1 cell when the
    /// targeting cycle is `None`, i.e. every firing of the PE).
    StuckAt {
        /// The [`FaultableBundle`] bit to force.
        bit: usize,
        /// The forced value.
        value: bool,
    },
    /// The whole PE emits its silent [`FaultableBundle::dead`] bundle.
    DeadPe,
    /// The token arriving along `column` is lost on the wire.
    DroppedTransfer {
        /// Dependence column index.
        column: usize,
    },
    /// The link re-delivers the previous token of `column` instead of the
    /// current one.
    DuplicatedTransfer {
        /// Dependence column index.
        column: usize,
    },
}

/// A fault pinned to a specific processor (and optionally a specific
/// cycle). On a conflict-free design `(pe, cycle)` identifies exactly one
/// index point; `cycle: None` hits every firing of the PE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetedFault {
    /// What goes wrong.
    pub kind: FaultKind,
    /// Processor coordinates (the image of the space mapping `S`).
    pub pe: IVec,
    /// Firing cycle, or `None` for every cycle.
    pub cycle: Option<i64>,
}

/// A fault sampled independently at every index point with probability
/// `rate`, from the plan seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomFault {
    /// What goes wrong where the sample hits.
    pub kind: FaultKind,
    /// Per-point injection probability in `[0, 1]`.
    pub rate: f64,
}

/// A serializable, seed-deterministic fault experiment description.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the random component (ignored when `random` is empty).
    pub seed: u64,
    /// Faults pinned to `(pe, cycle)`.
    pub targeted: Vec<TargetedFault>,
    /// Rate-sampled faults.
    pub random: Vec<RandomFault>,
}

/// One fault the resolver actually attached to an index point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ResolvedFault {
    /// What was injected.
    pub kind: FaultKind,
    /// The index point it landed on.
    pub point: IVec,
    /// The processor executing that point.
    pub pe: IVec,
    /// The firing cycle.
    pub cycle: i64,
}

/// A [`FaultPlan`] lowered against one `(algorithm, mapping)` pair: pure
/// lookup tables implementing [`FaultInjector`] for any
/// [`FaultableBundle`].
#[derive(Debug, Clone, Default)]
pub struct ResolvedFaultPlan {
    dead: HashSet<IVec>,
    stuck: HashMap<IVec, Vec<(usize, bool)>>,
    flips: HashMap<IVec, Vec<usize>>,
    transfers: HashMap<IVec, Vec<(usize, TransferFault)>>,
    /// Every fault attached to a point, in resolution order (targeted
    /// faults first, then random, each in plan order point-major).
    pub injected: Vec<ResolvedFault>,
}

const K_FAULT: u64 = 0x9E3779B97F4A7C15;
const K_POINT: u64 = 0xC2B2AE3D27D4EB4F;

pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// `true` with probability `rate` as a pure function of the key.
fn sample(seed: u64, fault_index: usize, rank: u64, rate: f64) -> bool {
    let key = seed ^ (fault_index as u64).wrapping_mul(K_FAULT) ^ rank.wrapping_mul(K_POINT);
    let unit = (splitmix64(key) >> 11) as f64 / (1u64 << 53) as f64;
    unit < rate
}

impl FaultPlan {
    /// A plan with no faults at all: resolving it yields an injector whose
    /// runs are bit-identical to the faultless engines.
    pub fn empty() -> Self {
        Self::default()
    }

    /// True iff the plan can never inject anything.
    pub fn is_empty(&self) -> bool {
        self.targeted.is_empty() && self.random.iter().all(|r| r.rate <= 0.0)
    }

    /// Lowers the plan against a concrete algorithm and mapping by walking
    /// the index set once: targeted faults match points by `(place, time)`,
    /// random faults sample each point from the seed.
    pub fn resolve(&self, alg: &AlgorithmTriplet, t: &MappingMatrix) -> ResolvedFaultPlan {
        let mut r = ResolvedFaultPlan::default();
        for (rank, q) in alg.index_set.iter_points().enumerate() {
            let time = t.time(&q);
            let place = t.place(&q);
            for f in &self.targeted {
                if f.pe == place && f.cycle.is_none_or(|c| c == time) {
                    r.attach(f.kind, &q, &place, time);
                }
            }
            for (fi, f) in self.random.iter().enumerate() {
                if sample(self.seed, fi, rank as u64, f.rate) {
                    r.attach(f.kind, &q, &place, time);
                }
            }
        }
        r
    }
}

impl ResolvedFaultPlan {
    fn attach(&mut self, kind: FaultKind, point: &IVec, pe: &IVec, cycle: i64) {
        match kind {
            FaultKind::TransientFlip { bit } => {
                self.flips.entry(point.clone()).or_default().push(bit);
            }
            FaultKind::StuckAt { bit, value } => {
                self.stuck
                    .entry(point.clone())
                    .or_default()
                    .push((bit, value));
            }
            FaultKind::DeadPe => {
                self.dead.insert(pe.clone());
            }
            FaultKind::DroppedTransfer { column } => {
                self.transfers
                    .entry(point.clone())
                    .or_default()
                    .push((column, TransferFault::Drop));
            }
            FaultKind::DuplicatedTransfer { column } => {
                self.transfers
                    .entry(point.clone())
                    .or_default()
                    .push((column, TransferFault::Duplicate));
            }
        }
        self.injected.push(ResolvedFault {
            kind,
            point: point.clone(),
            pe: pe.clone(),
            cycle,
        });
    }

    /// True iff nothing was attached anywhere.
    pub fn is_empty(&self) -> bool {
        self.injected.is_empty()
    }
}

impl<B: FaultableBundle> FaultInjector<B> for ResolvedFaultPlan {
    fn pe_dead(&self, processor: &IVec) -> bool {
        self.dead.contains(processor)
    }

    fn on_output(
        &self,
        _cycle: i64,
        point: &IVec,
        processor: &IVec,
        bundle: &mut B,
    ) -> Vec<String> {
        let mut kinds = Vec::new();
        if self.dead.contains(processor) {
            *bundle = B::dead();
            kinds.push("dead_pe".to_string());
        }
        if let Some(bits) = self.stuck.get(point) {
            for &(bit, value) in bits {
                bundle.set_bit(bit, value);
                kinds.push(format!(
                    "stuck_at bit={} value={}",
                    B::bit_name(bit),
                    value as u8
                ));
            }
        }
        if let Some(bits) = self.flips.get(point) {
            for &bit in bits {
                bundle.flip_bit(bit);
                kinds.push(format!("transient_flip bit={}", B::bit_name(bit)));
            }
        }
        kinds
    }

    fn on_transfer(&self, _cycle: i64, point: &IVec, column: usize) -> TransferFault {
        self.transfers
            .get(point)
            .and_then(|v| v.iter().find(|(c, _)| *c == column))
            .map_or(TransferFault::None, |&(_, f)| f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_depanal::{compose, Expansion};
    use bitlevel_ir::WordLevelAlgorithm;
    use bitlevel_mapping::PaperDesign;
    use bitlevel_systolic::MatmulSignals;

    fn fixture() -> (AlgorithmTriplet, MappingMatrix) {
        let alg = compose(&WordLevelAlgorithm::matmul(2), 2, Expansion::II);
        (alg, PaperDesign::TimeOptimal.mapping(2))
    }

    #[test]
    fn targeted_fault_resolves_to_exactly_one_point_on_a_conflict_free_design() {
        let (alg, t) = fixture();
        let q = IVec::from([2, 1, 2, 2, 1]);
        let plan = FaultPlan {
            seed: 0,
            targeted: vec![TargetedFault {
                kind: FaultKind::TransientFlip { bit: 2 },
                pe: t.place(&q),
                cycle: Some(t.time(&q)),
            }],
            random: vec![],
        };
        let r = plan.resolve(&alg, &t);
        assert_eq!(r.injected.len(), 1, "{:?}", r.injected);
        assert_eq!(r.injected[0].point, q);
        let mut b = MatmulSignals::default();
        let kinds = r.on_output(r.injected[0].cycle, &q, &t.place(&q), &mut b);
        assert_eq!(kinds, vec!["transient_flip bit=s".to_string()]);
        assert!(b.s);
    }

    #[test]
    fn rate_extremes_inject_nothing_and_everything() {
        let (alg, t) = fixture();
        let zero = FaultPlan {
            seed: 7,
            targeted: vec![],
            random: vec![RandomFault {
                kind: FaultKind::DeadPe,
                rate: 0.0,
            }],
        };
        assert!(zero.resolve(&alg, &t).is_empty());
        assert!(zero.is_empty());
        let one = FaultPlan {
            seed: 7,
            targeted: vec![],
            random: vec![RandomFault {
                kind: FaultKind::TransientFlip { bit: 0 },
                rate: 1.0,
            }],
        };
        let r = one.resolve(&alg, &t);
        assert_eq!(r.injected.len() as u128, alg.index_set.cardinality());
    }

    #[test]
    fn resolution_is_a_pure_function_of_the_seed() {
        let (alg, t) = fixture();
        let plan = FaultPlan {
            seed: 41,
            targeted: vec![],
            random: vec![RandomFault {
                kind: FaultKind::TransientFlip { bit: 1 },
                rate: 0.25,
            }],
        };
        let a = plan.resolve(&alg, &t);
        let b = plan.resolve(&alg, &t);
        assert_eq!(a.injected, b.injected);
        assert!(
            !a.is_empty(),
            "rate 0.25 over 32 points should hit at least once"
        );
        let other = FaultPlan {
            seed: 42,
            ..plan.clone()
        };
        assert_ne!(
            other.resolve(&alg, &t).injected,
            a.injected,
            "different seeds should sample differently"
        );
    }

    #[test]
    fn stuck_at_without_cycle_hits_every_firing_of_the_pe() {
        let (alg, t) = fixture();
        let q = IVec::from([1, 1, 1, 1, 1]);
        let pe = t.place(&q);
        let plan = FaultPlan {
            seed: 0,
            targeted: vec![TargetedFault {
                kind: FaultKind::StuckAt {
                    bit: 3,
                    value: true,
                },
                pe: pe.clone(),
                cycle: None,
            }],
            random: vec![],
        };
        let r = plan.resolve(&alg, &t);
        // Each PE fires once per j3 value: u times.
        assert_eq!(r.injected.len(), 2, "{:?}", r.injected);
        for f in &r.injected {
            assert_eq!(f.pe, pe);
        }
    }

    #[test]
    fn transfer_faults_answer_only_their_column() {
        let (alg, t) = fixture();
        let q = IVec::from([1, 2, 1, 2, 2]);
        let plan = FaultPlan {
            seed: 0,
            targeted: vec![TargetedFault {
                kind: FaultKind::DroppedTransfer { column: 3 },
                pe: t.place(&q),
                cycle: Some(t.time(&q)),
            }],
            random: vec![],
        };
        let r = plan.resolve(&alg, &t);
        let tf = |col| FaultInjector::<MatmulSignals>::on_transfer(&r, 0, &q, col);
        assert_eq!(tf(3), TransferFault::Drop);
        assert_eq!(tf(4), TransferFault::None);
    }
}
