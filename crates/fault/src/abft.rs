//! Algorithm-based fault tolerance for the bit-level matmul.
//!
//! The classic ABFT construction appends a checksum row and column to the
//! operand matrices so the array computes its own check data. Because the
//! (3.12) structure accumulates mod `2^{2p−1}` (the `s`/`c`/`c'` planes
//! carry exactly `2p−1` result bits per tile), the checksums live in the
//! same residue ring: we derive the expected row/column sums of `Z = X·Y`
//! from the *inputs* — `rowref_i = Σ_k x_ik·(Σ_j y_kj)` and
//! `colref_j = Σ_k (Σ_i x_ik)·y_kj`, all mod `M = 2^{2p−1}` — and compare
//! them with the sums of the drained output. A nonzero difference is a
//! *syndrome*.
//!
//! Why single transient flips can never escape (the zero-SDC argument the
//! E17 sweep measures): a flipped `x` bit propagates only along `d̄₁`/`d̄₄`,
//! corrupting tiles of a single result **row**, so each corrupted column
//! holds exactly one corrupted entry and its column syndrome is the nonzero
//! per-entry delta (every entry lives in `[0, M)`). A flipped `y` bit is
//! the transpose case, caught by row syndromes. Flips of `s`/`c`/`c'` stay
//! inside one `(j₁, j₂)` tile — one corrupted entry, caught by both. Flips
//! that no consumer reads are masked. Multi-fault plans (the Monte Carlo
//! campaign) *can* cancel mod `M`; that residual SDC rate is reported, not
//! asserted away.

use serde::{Deserialize, Serialize};

/// What happened to one faulted run, relative to the golden output and the
/// checksum syndromes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// The output equals the golden product: the fault had no effect.
    Masked,
    /// The output is wrong and at least one syndrome is nonzero.
    Detected,
    /// Silent data corruption: wrong output, all syndromes zero.
    Sdc,
}

impl std::fmt::Display for FaultOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultOutcome::Masked => write!(f, "masked"),
            FaultOutcome::Detected => write!(f, "detected"),
            FaultOutcome::Sdc => write!(f, "sdc"),
        }
    }
}

/// The accumulator modulus of the (3.12) structure: `2^{2p−1}`.
pub fn checksum_modulus(p: usize) -> u128 {
    1u128 << (2 * p - 1)
}

/// Input-derived ABFT reference checksums for one `u×u`, `p`-bit matmul.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MatmulChecksums {
    modulus: u128,
    /// Expected `Σ_j z_ij mod M` per row `i`.
    pub row_refs: Vec<u128>,
    /// Expected `Σ_i z_ij mod M` per column `j`.
    pub col_refs: Vec<u128>,
}

/// Syndromes of one observed output against the references.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SyndromeSet {
    /// `(Σ_j z_ij − rowref_i) mod M` per row.
    pub rows: Vec<u128>,
    /// `(Σ_i z_ij − colref_j) mod M` per column.
    pub cols: Vec<u128>,
}

impl SyndromeSet {
    /// True iff every syndrome is zero (the check passes).
    pub fn is_clean(&self) -> bool {
        self.rows.iter().all(|&s| s == 0) && self.cols.iter().all(|&s| s == 0)
    }
}

impl MatmulChecksums {
    /// Derives the reference checksums from the operands alone — the data a
    /// real ABFT array would compute in its appended checksum row/column.
    pub fn derive(x: &[Vec<u128>], y: &[Vec<u128>], p: usize) -> Self {
        let m = checksum_modulus(p);
        let u = x.len();
        // Column sums of X and row sums of Y, reduced as they grow.
        let mut x_colsum = vec![0u128; u];
        let mut y_rowsum = vec![0u128; u];
        for k in 0..u {
            for row in x {
                x_colsum[k] = (x_colsum[k] + row[k]) % m;
            }
            for &v in &y[k] {
                y_rowsum[k] = (y_rowsum[k] + v) % m;
            }
        }
        let row_refs = (0..u)
            .map(|i| (0..u).fold(0u128, |acc, k| (acc + x[i][k] % m * y_rowsum[k]) % m))
            .collect();
        let col_refs = (0..u)
            .map(|j| (0..u).fold(0u128, |acc, k| (acc + x_colsum[k] * (y[k][j] % m)) % m))
            .collect();
        MatmulChecksums {
            modulus: m,
            row_refs,
            col_refs,
        }
    }

    /// Syndrome decoding after drain: observed row/column sums minus the
    /// references, mod `M`.
    pub fn syndromes(&self, observed: &[Vec<u128>]) -> SyndromeSet {
        let m = self.modulus;
        let u = observed.len();
        let rows = (0..u)
            .map(|i| {
                let sum = observed[i].iter().fold(0u128, |acc, &z| (acc + z % m) % m);
                (sum + m - self.row_refs[i]) % m
            })
            .collect();
        let cols = (0..u)
            .map(|j| {
                let sum = observed
                    .iter()
                    .fold(0u128, |acc, row| (acc + row[j] % m) % m);
                (sum + m - self.col_refs[j]) % m
            })
            .collect();
        SyndromeSet { rows, cols }
    }

    /// Classifies one faulted run: identical to golden → [`FaultOutcome::Masked`];
    /// wrong with a nonzero syndrome → [`FaultOutcome::Detected`]; wrong with
    /// clean syndromes → [`FaultOutcome::Sdc`].
    pub fn classify(&self, golden: &[Vec<u128>], observed: &[Vec<u128>]) -> FaultOutcome {
        if observed == golden {
            FaultOutcome::Masked
        } else if self.syndromes(observed).is_clean() {
            FaultOutcome::Sdc
        } else {
            FaultOutcome::Detected
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_systolic::BitMatmulArray;

    fn operands(u: usize, p: usize, seed: u128) -> (Vec<Vec<u128>>, Vec<Vec<u128>>) {
        let max = BitMatmulArray::new(u, p).max_safe_entry();
        let mut s = seed;
        let mut gen = |_| {
            (0..u)
                .map(|_| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (s >> 64) % (max + 1)
                })
                .collect::<Vec<_>>()
        };
        (
            (0..u).map(&mut gen).collect(),
            (0..u).map(&mut gen).collect(),
        )
    }

    #[test]
    fn faultless_product_is_masked_with_clean_syndromes() {
        let (u, p) = (3, 3);
        let (x, y) = operands(u, p, 99);
        let golden = BitMatmulArray::new(u, p).reference(&x, &y);
        let cs = MatmulChecksums::derive(&x, &y, p);
        assert!(cs.syndromes(&golden).is_clean());
        assert_eq!(cs.classify(&golden, &golden), FaultOutcome::Masked);
    }

    #[test]
    fn any_single_entry_corruption_is_detected_by_both_syndrome_planes() {
        let (u, p) = (2, 2);
        let (x, y) = operands(u, p, 5);
        let golden = BitMatmulArray::new(u, p).reference(&x, &y);
        let cs = MatmulChecksums::derive(&x, &y, p);
        let m = checksum_modulus(p);
        for i in 0..u {
            for j in 0..u {
                for delta in 1..m {
                    let mut bad = golden.clone();
                    bad[i][j] = (bad[i][j] + delta) % m;
                    let syn = cs.syndromes(&bad);
                    assert_eq!(syn.rows[i], delta);
                    assert_eq!(syn.cols[j], delta);
                    assert_eq!(cs.classify(&golden, &bad), FaultOutcome::Detected);
                }
            }
        }
    }

    #[test]
    fn cancelling_multi_entry_corruption_is_sdc() {
        // Two compensating corruptions inside one row *and* one column pair
        // cancel both syndrome planes: the documented multi-fault escape.
        let (u, p) = (2, 2);
        let (x, y) = operands(u, p, 13);
        let golden = BitMatmulArray::new(u, p).reference(&x, &y);
        let cs = MatmulChecksums::derive(&x, &y, p);
        let m = checksum_modulus(p);
        let mut bad = golden.clone();
        bad[0][0] = (bad[0][0] + 1) % m;
        bad[0][1] = (bad[0][1] + m - 1) % m;
        bad[1][0] = (bad[1][0] + m - 1) % m;
        bad[1][1] = (bad[1][1] + 1) % m;
        assert!(cs.syndromes(&bad).is_clean());
        assert_eq!(cs.classify(&golden, &bad), FaultOutcome::Sdc);
    }
}
