//! Fault-campaign drivers: exhaustive single-fault sweeps and seeded Monte
//! Carlo over the Expansion II bit-level matmul, each case executed on
//! **both** the interpreted clocked engine and the compiled backend and
//! classified against the ABFT checksums of [`crate::abft`].
//!
//! The exhaustive sweep targets every `(index point, signal bit)` pair with
//! one transient flip — `|J|·5` cases — and is the experiment behind the
//! zero-SDC acceptance bar: on both paper designs every single flip must
//! end up masked or detected. The Monte Carlo driver samples multi-fault
//! plans at a per-point rate and reports the residual SDC probability that
//! compensating faults can reach (see the cancellation example in
//! [`crate::abft`]).
//!
//! Two execution strategies cover the exhaustive space:
//!
//! * [`single_fault_campaign`] — the dual-engine oracle: every case runs the
//!   interpreted *and* the compiled engine, one full walk per case;
//! * [`batched_single_fault_campaign`] — the lane-packed production path:
//!   up to 64 distinct fault cases ride the bit-lanes of **one** word-wide
//!   compiled walk (via
//!   [`bitlevel_systolic::LaneFaultedCells`]), walks are distributed across
//!   threads, and all lanes' syndromes classify in one pass — case-for-case
//!   bit-identical to the scalar sweep (a report method checks exactly
//!   that).
//!
//! Both compile through a shared [`CompileCache`], so repeated campaigns on
//! one design pay for schedule compilation once.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use bitlevel_cache::CompileCache;
use bitlevel_depanal::{compose, Expansion};
use bitlevel_ir::{AlgorithmTriplet, WordLevelAlgorithm};
use bitlevel_linalg::IVec;
use bitlevel_mapping::PaperDesign;
use bitlevel_systolic::{
    run_clocked_faulted, BitMatmulArray, CompiledSchedule, FaultableBundle, LaneFaultMasks,
    LaneFaultedCells, MatmulExpansionIICells, MatmulLaneCells, MatmulSignals, NullSink,
    PartitionStats, PartitionedSchedule, MAX_LANES,
};
use rayon::prelude::*;
use serde::Serialize;

use crate::abft::{FaultOutcome, MatmulChecksums};
use crate::plan::{splitmix64, FaultKind, FaultPlan, RandomFault, TargetedFault};

/// The (3.12) Expansion II structure for `u×u` matrices of `p`-bit words.
pub fn matmul_structure(u: usize, p: usize) -> AlgorithmTriplet {
    compose(&WordLevelAlgorithm::matmul(u as i64), p, Expansion::II)
}

/// Deterministic operand matrices with entries bounded by
/// [`BitMatmulArray::max_safe_entry`], so the faultless array reproduces
/// the golden product exactly.
pub fn operand_matrices(u: usize, p: usize, seed: u64) -> (Vec<Vec<u128>>, Vec<Vec<u128>>) {
    let max = BitMatmulArray::new(u, p).max_safe_entry();
    let mut ctr = 0u64;
    let mut next = |_| {
        (0..u)
            .map(|_| {
                ctr += 1;
                splitmix64(seed ^ ctr.wrapping_mul(0xA0761D6478BD642F)) as u128 % (max + 1)
            })
            .collect::<Vec<u128>>()
    };
    (
        (0..u).map(&mut next).collect(),
        (0..u).map(&mut next).collect(),
    )
}

/// One exhaustive-sweep case: a single injected fault and how each engine's
/// run classified under the ABFT checksums.
#[derive(Debug, Clone, Serialize)]
pub struct FaultCase {
    /// The injected fault.
    pub kind: FaultKind,
    /// The index point it hit.
    pub point: IVec,
    /// The processor executing that point.
    pub pe: IVec,
    /// The firing cycle.
    pub cycle: i64,
    /// Classification of the interpreted clocked run.
    pub interpreted: FaultOutcome,
    /// Classification of the compiled-backend run.
    pub compiled: FaultOutcome,
}

impl FaultCase {
    /// True iff both engines classified identically.
    pub fn agree(&self) -> bool {
        self.interpreted == self.compiled
    }
}

/// Aggregate result of one exhaustive single-fault sweep.
#[derive(Debug, Clone, Serialize)]
pub struct FaultCampaignReport {
    /// Which paper design ran (`"TimeOptimal"` / `"NearestNeighbour"`).
    pub design: String,
    /// Matrix dimension.
    pub u: usize,
    /// Word length.
    pub p: usize,
    /// Operand/plan seed.
    pub seed: u64,
    /// Number of injected cases (`|J| ·` signal bits).
    pub total: usize,
    /// Cases whose output equalled the golden product.
    pub masked: usize,
    /// Cases caught by a nonzero syndrome.
    pub detected: usize,
    /// Silent-data-corruption cases (must be 0 for single transient flips).
    pub sdc: usize,
    /// Cases where the interpreted and compiled engines disagreed.
    pub engine_mismatches: usize,
    /// Per-PE count of non-masked cases (the critical-PE heat map data),
    /// sorted by processor coordinates.
    pub vulnerability: Vec<(IVec, u64)>,
    /// Every case, in sweep order.
    pub cases: Vec<FaultCase>,
}

impl FaultCampaignReport {
    /// True iff `{masked, detected, sdc}` partitions the injected set.
    pub fn classifications_partition(&self) -> bool {
        self.masked + self.detected + self.sdc == self.total
    }

    /// The per-PE vulnerability as a map, ready for
    /// [`bitlevel_systolic::render_fault_heatmap`].
    pub fn vulnerability_map(&self) -> BTreeMap<IVec, u64> {
        self.vulnerability.iter().cloned().collect()
    }

    /// CSV export, one row per case.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("design,u,p,kind,point,pe,cycle,interpreted,compiled,agree\n");
        for c in &self.cases {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{}",
                self.design,
                self.u,
                self.p,
                q(&format!("{:?}", c.kind)),
                q(&c.point.to_string()),
                q(&c.pe.to_string()),
                c.cycle,
                c.interpreted,
                c.compiled,
                c.agree()
            );
        }
        out
    }

    /// JSON export of the whole report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }
}

fn q(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "\"\""))
}

struct CampaignRig {
    alg: AlgorithmTriplet,
    t: bitlevel_mapping::MappingMatrix,
    ic: bitlevel_mapping::Interconnect,
    sched: Arc<CompiledSchedule>,
    cells: MatmulExpansionIICells,
    checksums: MatmulChecksums,
    golden: Vec<Vec<u128>>,
}

impl CampaignRig {
    fn new(design: PaperDesign, u: usize, p: usize, seed: u64, cache: &CompileCache) -> Self {
        let alg = matmul_structure(u, p);
        let t = design.mapping(p as i64);
        let ic = design.interconnect(p as i64);
        let (x, y) = operand_matrices(u, p, seed);
        let golden = BitMatmulArray::new(u, p).reference(&x, &y);
        let checksums = MatmulChecksums::derive(&x, &y, p);
        let cells = MatmulExpansionIICells::new(u, p, &x, &y);
        let (sched, _) = cache
            .get_or_compile(&alg, &t, &ic)
            .expect("paper-scale structures always fit the compiled representation");
        CampaignRig {
            alg,
            t,
            ic,
            sched,
            cells,
            checksums,
            golden,
        }
    }

    /// Runs one plan on both engines and classifies each output.
    fn classify_both(&mut self, plan: &FaultPlan) -> (FaultOutcome, FaultOutcome, usize) {
        let resolved = plan.resolve(&self.alg, &self.t);
        let injected = resolved.injected.len();
        let irun = run_clocked_faulted(
            &self.alg,
            &self.t,
            &self.ic,
            &mut self.cells,
            &mut NullSink,
            &resolved,
        );
        let crun = self
            .sched
            .execute_faulted(&self.cells, &mut NullSink, &resolved);
        let interpreted = self
            .checksums
            .classify(&self.golden, &self.cells.extract_product(&irun));
        let compiled = self
            .checksums
            .classify(&self.golden, &self.cells.extract_product(&crun));
        (interpreted, compiled, injected)
    }
}

/// The exhaustive single-fault sweep of experiment E17: one transient flip
/// per `(index point, signal bit)` pair, each case run on both engines.
///
/// Compiles through a throwaway [`CompileCache`]; use
/// [`single_fault_campaign_with_cache`] to share compilation across
/// campaigns (the `DesignFlow` pipeline does).
pub fn single_fault_campaign(
    design: PaperDesign,
    u: usize,
    p: usize,
    seed: u64,
) -> FaultCampaignReport {
    single_fault_campaign_with_cache(design, u, p, seed, &CompileCache::new())
}

/// [`single_fault_campaign`] compiling through a caller-supplied
/// [`CompileCache`]: repeated campaigns (or a scalar/batched pair) on one
/// design hit the cache instead of recompiling, and the cache's
/// [`bitlevel_cache::CacheStats`] counters account for the lookup.
pub fn single_fault_campaign_with_cache(
    design: PaperDesign,
    u: usize,
    p: usize,
    seed: u64,
    cache: &CompileCache,
) -> FaultCampaignReport {
    let mut rig = CampaignRig::new(design, u, p, seed, cache);
    let points: Vec<IVec> = rig.alg.index_set.iter_points().collect();
    let mut cases = Vec::with_capacity(points.len() * MatmulSignals::fault_bits());
    let mut vulnerability: BTreeMap<IVec, u64> = BTreeMap::new();
    for point in &points {
        let pe = rig.t.place(point);
        let cycle = rig.t.time(point);
        for bit in 0..MatmulSignals::fault_bits() {
            let kind = FaultKind::TransientFlip { bit };
            let plan = FaultPlan {
                seed,
                targeted: vec![TargetedFault {
                    kind,
                    pe: pe.clone(),
                    cycle: Some(cycle),
                }],
                random: vec![],
            };
            let (interpreted, compiled, _) = rig.classify_both(&plan);
            if interpreted != FaultOutcome::Masked {
                *vulnerability.entry(pe.clone()).or_insert(0) += 1;
            }
            cases.push(FaultCase {
                kind,
                point: point.clone(),
                pe: pe.clone(),
                cycle,
                interpreted,
                compiled,
            });
        }
    }
    let count = |o: FaultOutcome| cases.iter().filter(|c| c.interpreted == o).count();
    FaultCampaignReport {
        design: format!("{design:?}"),
        u,
        p,
        seed,
        total: cases.len(),
        masked: count(FaultOutcome::Masked),
        detected: count(FaultOutcome::Detected),
        sdc: count(FaultOutcome::Sdc),
        engine_mismatches: cases.iter().filter(|c| !c.agree()).count(),
        vulnerability: vulnerability.into_iter().collect(),
        cases,
    }
}

/// One Monte Carlo trial: a seeded multi-fault plan and both engines'
/// classifications.
#[derive(Debug, Clone, Serialize)]
pub struct MonteCarloTrial {
    /// The per-trial plan seed (`campaign seed + trial index`).
    pub seed: u64,
    /// How many faults the plan resolved to.
    pub injected: usize,
    /// Classification of the interpreted run.
    pub interpreted: FaultOutcome,
    /// Classification of the compiled run.
    pub compiled: FaultOutcome,
}

/// Aggregate result of a seeded Monte Carlo fault campaign.
#[derive(Debug, Clone, Serialize)]
pub struct MonteCarloReport {
    /// Which paper design ran.
    pub design: String,
    /// Matrix dimension.
    pub u: usize,
    /// Word length.
    pub p: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Per-point, per-bit transient-flip rate.
    pub rate: f64,
    /// Number of trials.
    pub trials: usize,
    /// Trials whose output equalled the golden product.
    pub masked: usize,
    /// Trials caught by a nonzero syndrome.
    pub detected: usize,
    /// Silent-data-corruption trials (possible under multi-fault plans).
    pub sdc: usize,
    /// Trials where the engines disagreed.
    pub engine_mismatches: usize,
    /// Mean number of faults injected per trial.
    pub mean_injected: f64,
    /// Every trial, in order.
    pub details: Vec<MonteCarloTrial>,
}

/// Seeded Monte Carlo: each trial samples one transient flip per signal
/// bit at `rate` across every index point, runs both engines, and
/// classifies. Multi-fault cancellation means `sdc` may be nonzero here —
/// it is measured, not asserted.
pub fn monte_carlo_campaign(
    design: PaperDesign,
    u: usize,
    p: usize,
    seed: u64,
    trials: usize,
    rate: f64,
) -> MonteCarloReport {
    monte_carlo_campaign_with_cache(design, u, p, seed, trials, rate, &CompileCache::new())
}

/// [`monte_carlo_campaign`] compiling through a caller-supplied
/// [`CompileCache`] (see [`single_fault_campaign_with_cache`]).
pub fn monte_carlo_campaign_with_cache(
    design: PaperDesign,
    u: usize,
    p: usize,
    seed: u64,
    trials: usize,
    rate: f64,
    cache: &CompileCache,
) -> MonteCarloReport {
    let mut rig = CampaignRig::new(design, u, p, seed, cache);
    let mut details = Vec::with_capacity(trials);
    for trial in 0..trials {
        let plan = FaultPlan {
            seed: seed.wrapping_add(trial as u64),
            targeted: vec![],
            random: (0..MatmulSignals::fault_bits())
                .map(|bit| RandomFault {
                    kind: FaultKind::TransientFlip { bit },
                    rate,
                })
                .collect(),
        };
        let (interpreted, compiled, injected) = rig.classify_both(&plan);
        details.push(MonteCarloTrial {
            seed: plan.seed,
            injected,
            interpreted,
            compiled,
        });
    }
    let count = |o: FaultOutcome| details.iter().filter(|d| d.interpreted == o).count();
    MonteCarloReport {
        design: format!("{design:?}"),
        u,
        p,
        seed,
        rate,
        trials,
        masked: count(FaultOutcome::Masked),
        detected: count(FaultOutcome::Detected),
        sdc: count(FaultOutcome::Sdc),
        engine_mismatches: details
            .iter()
            .filter(|d| d.interpreted != d.compiled)
            .count(),
        mean_injected: if trials == 0 {
            0.0
        } else {
            details.iter().map(|d| d.injected).sum::<usize>() as f64 / trials as f64
        },
        details,
    }
}

/// One case of a lane-packed exhaustive sweep: which walk and lane carried
/// it, and how its syndrome classified.
#[derive(Debug, Clone, Serialize)]
pub struct BatchedFaultCase {
    /// The injected fault.
    pub kind: FaultKind,
    /// The index point it hit.
    pub point: IVec,
    /// The processor executing that point.
    pub pe: IVec,
    /// The firing cycle.
    pub cycle: i64,
    /// Which word-wide walk carried this case.
    pub walk: usize,
    /// Which bit-lane of that walk.
    pub lane: usize,
    /// Classification of the lane's extracted product.
    pub outcome: FaultOutcome,
}

/// Aggregate result of one lane-packed exhaustive single-fault sweep.
#[derive(Debug, Clone, Serialize)]
pub struct BatchedFaultCampaignReport {
    /// Which paper design ran.
    pub design: String,
    /// Matrix dimension.
    pub u: usize,
    /// Word length.
    pub p: usize,
    /// Operand seed.
    pub seed: u64,
    /// Lane width each walk was packed to (`1..=MAX_LANES`).
    pub width: usize,
    /// Number of injected cases (`|J| ·` signal bits).
    pub total: usize,
    /// Number of word-wide walks executed (`⌈total / width⌉`).
    pub walks: usize,
    /// Cases whose output equalled the golden product.
    pub masked: usize,
    /// Cases caught by a nonzero syndrome.
    pub detected: usize,
    /// Silent-data-corruption cases (must be 0 for single transient flips).
    pub sdc: usize,
    /// Per-PE count of non-masked cases, sorted by processor coordinates.
    pub vulnerability: Vec<(IVec, u64)>,
    /// Every case, in the scalar sweep's order.
    pub cases: Vec<BatchedFaultCase>,
}

impl BatchedFaultCampaignReport {
    /// True iff `{masked, detected, sdc}` partitions the injected set.
    pub fn classifications_partition(&self) -> bool {
        self.masked + self.detected + self.sdc == self.total
    }

    /// The per-PE vulnerability as a map, ready for
    /// [`bitlevel_systolic::render_fault_heatmap`].
    pub fn vulnerability_map(&self) -> BTreeMap<IVec, u64> {
        self.vulnerability.iter().cloned().collect()
    }

    /// True iff this batched sweep is case-for-case identical to a scalar
    /// dual-engine sweep: same cases in the same order, and every lane's
    /// classification equal to **both** engines' scalar classification.
    pub fn matches_scalar(&self, scalar: &FaultCampaignReport) -> bool {
        self.total == scalar.total
            && self.cases.len() == scalar.cases.len()
            && self.cases.iter().zip(&scalar.cases).all(|(b, s)| {
                b.kind == s.kind
                    && b.point == s.point
                    && b.pe == s.pe
                    && b.cycle == s.cycle
                    && b.outcome == s.interpreted
                    && b.outcome == s.compiled
            })
    }

    /// JSON export of the whole report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }
}

/// The lane-packed exhaustive single-fault sweep: the same case list as
/// [`single_fault_campaign`] (every `(index point, signal bit)` transient
/// flip, in the same order), but packed `width` distinct cases per
/// word-wide compiled walk instead of one case per walk.
///
/// Each chunk of `width` cases becomes one [`LaneFaultedCells`] walk: lane
/// `l` carries chunk case `l`'s flip via a per-lane mask, every lane's
/// product is extracted straight from the packed words, and all lanes
/// classify against the shared golden product/checksums in one pass. Chunks
/// are independent, so the walk list is distributed across threads. The
/// schedule compiles once through `cache` — shared with any scalar campaign
/// or pipeline using the same cache.
///
/// `width` is clamped to `1..=`[`MAX_LANES`]. At width 1 this degenerates
/// to one case per walk (the scalar compiled engine's cost); at width 64 an
/// exhaustive sweep runs ~`width`× fewer walks.
pub fn batched_single_fault_campaign(
    design: PaperDesign,
    u: usize,
    p: usize,
    seed: u64,
    width: usize,
    cache: &CompileCache,
) -> BatchedFaultCampaignReport {
    let width = width.clamp(1, MAX_LANES);
    let alg = matmul_structure(u, p);
    let t = design.mapping(p as i64);
    let ic = design.interconnect(p as i64);
    let (x, y) = operand_matrices(u, p, seed);
    let golden = BitMatmulArray::new(u, p).reference(&x, &y);
    let checksums = MatmulChecksums::derive(&x, &y, p);
    let (sched, _) = cache
        .get_or_compile(&alg, &t, &ic)
        .expect("paper-scale structures always fit the compiled representation");

    // Case descriptors in the exact scalar sweep order: points × signal
    // bits. Every case is a transient flip at one index point — precisely
    // the fault space LaneFaultMasks covers.
    struct CaseDesc {
        kind: FaultKind,
        point: IVec,
        pe: IVec,
        cycle: i64,
        bit: usize,
    }
    let mut descs = Vec::new();
    for point in alg.index_set.iter_points() {
        let pe = t.place(&point);
        let cycle = t.time(&point);
        for bit in 0..MatmulSignals::fault_bits() {
            descs.push(CaseDesc {
                kind: FaultKind::TransientFlip { bit },
                point: point.clone(),
                pe: pe.clone(),
                cycle,
                bit,
            });
        }
    }
    let total = descs.len();
    let chunks: Vec<(usize, &[CaseDesc])> = descs.chunks(width).enumerate().collect();
    let walks = chunks.len();

    // Every walk carries the same operands in every lane — only the fault
    // masks differ — so the lane packing is done once and shared. A ragged
    // final chunk leaves its high lanes clean; they are never read back.
    let cells = MatmulLaneCells::new(u, p, &vec![x.clone(); width], &vec![y.clone(); width]);

    let cases: Vec<BatchedFaultCase> = chunks
        .par_iter()
        .flat_map(|&(walk, chunk)| {
            let mut masks = LaneFaultMasks::new();
            for (lane, case) in chunk.iter().enumerate() {
                masks.flip(case.point.clone(), case.bit, lane);
            }
            let faulted = LaneFaultedCells::new(&cells, &masks);
            let run = sched.execute_batch(&faulted);
            let products = cells.extract_products(&run);
            chunk
                .iter()
                .enumerate()
                .map(|(lane, case)| BatchedFaultCase {
                    kind: case.kind,
                    point: case.point.clone(),
                    pe: case.pe.clone(),
                    cycle: case.cycle,
                    walk,
                    lane,
                    outcome: checksums.classify(&golden, &products[lane]),
                })
                .collect::<Vec<_>>()
        })
        .collect();

    let mut vulnerability: BTreeMap<IVec, u64> = BTreeMap::new();
    for case in &cases {
        if case.outcome != FaultOutcome::Masked {
            *vulnerability.entry(case.pe.clone()).or_insert(0) += 1;
        }
    }
    let count = |o: FaultOutcome| cases.iter().filter(|c| c.outcome == o).count();
    BatchedFaultCampaignReport {
        design: format!("{design:?}"),
        u,
        p,
        seed,
        width,
        total,
        walks,
        masked: count(FaultOutcome::Masked),
        detected: count(FaultOutcome::Detected),
        sdc: count(FaultOutcome::Sdc),
        vulnerability: vulnerability.into_iter().collect(),
        cases,
    }
}

/// One case of a partitioned exhaustive sweep: a single injected fault run
/// on the LSGP-partitioned engine and the compiled engine.
#[derive(Debug, Clone, Serialize)]
pub struct PartitionedFaultCase {
    /// The injected fault.
    pub kind: FaultKind,
    /// The index point it hit.
    pub point: IVec,
    /// The processor executing that point.
    pub pe: IVec,
    /// The firing cycle.
    pub cycle: i64,
    /// Classification of the partitioned-engine run.
    pub partitioned: FaultOutcome,
    /// Classification of the compiled-backend run.
    pub compiled: FaultOutcome,
}

impl PartitionedFaultCase {
    /// True iff both engines classified identically.
    pub fn agree(&self) -> bool {
        self.partitioned == self.compiled
    }
}

/// Aggregate result of one partitioned exhaustive single-fault sweep.
#[derive(Debug, Clone, Serialize)]
pub struct PartitionedCampaignReport {
    /// Which paper design ran.
    pub design: String,
    /// Matrix dimension.
    pub u: usize,
    /// Word length.
    pub p: usize,
    /// Operand seed.
    pub seed: u64,
    /// Shard statistics of the partition every case executed on.
    pub stats: PartitionStats,
    /// Number of injected cases (`|J| ·` signal bits).
    pub total: usize,
    /// Cases whose output equalled the golden product.
    pub masked: usize,
    /// Cases caught by a nonzero syndrome.
    pub detected: usize,
    /// Silent-data-corruption cases (must be 0 for single transient flips).
    pub sdc: usize,
    /// Cases where the partitioned and compiled engines disagreed (must be
    /// 0 — the partitioned faulted path is contractually bit-identical).
    pub engine_mismatches: usize,
    /// Per-PE count of non-masked cases, sorted by processor coordinates.
    pub vulnerability: Vec<(IVec, u64)>,
    /// Every case, in the scalar sweep's order.
    pub cases: Vec<PartitionedFaultCase>,
}

impl PartitionedCampaignReport {
    /// True iff `{masked, detected, sdc}` partitions the injected set.
    pub fn classifications_partition(&self) -> bool {
        self.masked + self.detected + self.sdc == self.total
    }

    /// The per-PE vulnerability as a map, ready for
    /// [`bitlevel_systolic::render_fault_heatmap`].
    pub fn vulnerability_map(&self) -> BTreeMap<IVec, u64> {
        self.vulnerability.iter().cloned().collect()
    }

    /// True iff this partitioned sweep is case-for-case identical to a
    /// scalar dual-engine sweep: same cases in the same order, every case's
    /// classification equal to both scalar engines'.
    pub fn matches_scalar(&self, scalar: &FaultCampaignReport) -> bool {
        self.total == scalar.total
            && self.cases.len() == scalar.cases.len()
            && self.cases.iter().zip(&scalar.cases).all(|(q, s)| {
                q.kind == s.kind
                    && q.point == s.point
                    && q.pe == s.pe
                    && q.cycle == s.cycle
                    && q.partitioned == s.interpreted
                    && q.compiled == s.compiled
            })
    }

    /// JSON export of the whole report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }
}

/// The exhaustive single-fault sweep executed on the LSGP-partitioned
/// engine over a fixed pool of `workers` physical workers, every case
/// cross-checked against the compiled engine.
///
/// Fault injection pins both engines to the interpreted sequential firing
/// order (the partitioned engine's faulted path delegates to it by
/// contract), so `engine_mismatches` must come out 0: the report *checks*
/// that a worker-pool execution of the fault space classifies
/// case-for-case identically to the unbounded virtual array, rather than
/// assuming it. Compiles once through `cache`; the partition is built once
/// and shared by every case.
///
/// # Panics
/// Panics if the structure does not compile or the design's schedule is
/// not causal (both paper designs are).
pub fn partitioned_single_fault_campaign(
    design: PaperDesign,
    u: usize,
    p: usize,
    seed: u64,
    workers: usize,
    cache: &CompileCache,
) -> PartitionedCampaignReport {
    let alg = matmul_structure(u, p);
    let t = design.mapping(p as i64);
    let ic = design.interconnect(p as i64);
    let (x, y) = operand_matrices(u, p, seed);
    let golden = BitMatmulArray::new(u, p).reference(&x, &y);
    let checksums = MatmulChecksums::derive(&x, &y, p);
    let cells = MatmulExpansionIICells::new(u, p, &x, &y);
    let (sched, _) = cache
        .get_or_compile(&alg, &t, &ic)
        .expect("paper-scale structures always fit the compiled representation");
    let part = PartitionedSchedule::try_new(Arc::clone(&sched), workers)
        .expect("the paper designs' schedules are causal, so they partition");

    struct CaseDesc {
        kind: FaultKind,
        point: IVec,
        pe: IVec,
        cycle: i64,
    }
    let mut descs = Vec::new();
    for point in alg.index_set.iter_points() {
        let pe = t.place(&point);
        let cycle = t.time(&point);
        for bit in 0..MatmulSignals::fault_bits() {
            descs.push(CaseDesc {
                kind: FaultKind::TransientFlip { bit },
                point: point.clone(),
                pe: pe.clone(),
                cycle,
            });
        }
    }
    let total = descs.len();

    // Cases are independent: each one resolves its own plan and walks the
    // shared partition/schedule, so the sweep distributes across threads.
    let cases: Vec<PartitionedFaultCase> = descs
        .par_iter()
        .map(|case| {
            let plan = FaultPlan {
                seed,
                targeted: vec![TargetedFault {
                    kind: case.kind,
                    pe: case.pe.clone(),
                    cycle: Some(case.cycle),
                }],
                random: vec![],
            };
            let resolved = plan.resolve(&alg, &t);
            let prun = part.execute_faulted(&cells, &mut NullSink, &resolved);
            let crun = sched.execute_faulted(&cells, &mut NullSink, &resolved);
            PartitionedFaultCase {
                kind: case.kind,
                point: case.point.clone(),
                pe: case.pe.clone(),
                cycle: case.cycle,
                partitioned: checksums.classify(&golden, &cells.extract_product(&prun)),
                compiled: checksums.classify(&golden, &cells.extract_product(&crun)),
            }
        })
        .collect();

    let mut vulnerability: BTreeMap<IVec, u64> = BTreeMap::new();
    for case in &cases {
        if case.partitioned != FaultOutcome::Masked {
            *vulnerability.entry(case.pe.clone()).or_insert(0) += 1;
        }
    }
    let count = |o: FaultOutcome| cases.iter().filter(|c| c.partitioned == o).count();
    PartitionedCampaignReport {
        design: format!("{design:?}"),
        u,
        p,
        seed,
        stats: part.stats().clone(),
        total,
        masked: count(FaultOutcome::Masked),
        detected: count(FaultOutcome::Detected),
        sdc: count(FaultOutcome::Sdc),
        engine_mismatches: cases.iter().filter(|c| !c.agree()).count(),
        vulnerability: vulnerability.into_iter().collect(),
        cases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_sweep_partitions_with_zero_sdc_and_engine_agreement() {
        for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
            let r = single_fault_campaign(design, 2, 2, 0xB17);
            assert_eq!(r.total, 32 * 5, "{design:?}");
            assert!(r.classifications_partition(), "{design:?}");
            assert_eq!(r.sdc, 0, "{design:?}: single flips must never escape");
            assert_eq!(r.engine_mismatches, 0, "{design:?}");
            assert!(
                r.detected > 0,
                "{design:?}: some flips must corrupt the product"
            );
            assert!(
                r.masked > 0,
                "{design:?}: some flips land on never-read wires"
            );
            assert!(!r.vulnerability.is_empty(), "{design:?}");
            let csv = r.to_csv();
            assert_eq!(csv.lines().count(), r.total + 1, "{design:?}");
            assert!(csv.contains("TransientFlip"), "{design:?}");
        }
    }

    #[test]
    fn batched_campaign_is_case_for_case_identical_to_scalar() {
        // The tentpole acceptance bar: lane-packing distinct fault cases
        // into word-wide walks must not change a single classification, at
        // any width, on either design — including ragged tails (160 cases
        // is not a multiple of 7, 23 or 64).
        let cache = CompileCache::new();
        for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
            let scalar = single_fault_campaign_with_cache(design, 2, 2, 0xB17, &cache);
            for width in [1usize, 7, 23, 64] {
                let batched = batched_single_fault_campaign(design, 2, 2, 0xB17, width, &cache);
                assert_eq!(batched.total, scalar.total, "{design:?} width {width}");
                assert_eq!(
                    batched.walks,
                    scalar.total.div_ceil(width),
                    "{design:?} width {width}"
                );
                assert!(batched.classifications_partition());
                assert_eq!(batched.sdc, 0, "{design:?} width {width}");
                assert!(
                    batched.matches_scalar(&scalar),
                    "{design:?} width {width}: batched sweep diverged from scalar"
                );
                assert_eq!(
                    batched.vulnerability, scalar.vulnerability,
                    "{design:?} width {width}"
                );
            }
        }
    }

    #[test]
    fn partitioned_campaign_is_case_for_case_identical_to_scalar() {
        // A fixed physical worker pool must not change a single fault
        // classification: every case on the partitioned engine classifies
        // exactly as both scalar engines do, at any pool size.
        let cache = CompileCache::new();
        for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
            let scalar = single_fault_campaign_with_cache(design, 2, 2, 0xB17, &cache);
            for workers in [1usize, 3, 8] {
                let part = partitioned_single_fault_campaign(design, 2, 2, 0xB17, workers, &cache);
                assert_eq!(part.total, scalar.total, "{design:?} workers {workers}");
                assert!(part.classifications_partition());
                assert_eq!(part.sdc, 0, "{design:?} workers {workers}");
                assert_eq!(part.engine_mismatches, 0, "{design:?} workers {workers}");
                assert!(
                    part.matches_scalar(&scalar),
                    "{design:?} workers {workers}: partitioned sweep diverged from scalar"
                );
                assert_eq!(part.stats.workers, workers, "{design:?} workers {workers}");
                assert_eq!(
                    part.vulnerability, scalar.vulnerability,
                    "{design:?} workers {workers}"
                );
            }
        }
        // All six campaigns above walked one schedule per design.
        assert_eq!(cache.stats().compiles(), 2);
    }

    #[test]
    fn campaigns_share_one_compile_through_the_cache() {
        // The campaign.rs:171 bypass regression: a scalar campaign, a
        // batched campaign and a Monte Carlo campaign on one design must
        // compile the schedule exactly once when handed the same cache.
        let cache = CompileCache::new();
        let design = PaperDesign::TimeOptimal;
        let scalar = single_fault_campaign_with_cache(design, 2, 2, 0xB17, &cache);
        let batched = batched_single_fault_campaign(design, 2, 2, 0xB17, 64, &cache);
        let mc = monte_carlo_campaign_with_cache(design, 2, 2, 9, 4, 0.02, &cache);
        assert_eq!(scalar.total, batched.total);
        assert_eq!(mc.trials, 4);
        let stats = cache.stats();
        assert_eq!(stats.compiles(), 1, "one design, one compile");
        assert_eq!(stats.hits, 2, "batched + monte carlo both hit");
    }

    #[test]
    fn batched_width_is_clamped() {
        let cache = CompileCache::new();
        let r = batched_single_fault_campaign(PaperDesign::TimeOptimal, 2, 2, 1, 0, &cache);
        assert_eq!(r.width, 1);
        assert_eq!(r.walks, r.total);
        let r = batched_single_fault_campaign(PaperDesign::TimeOptimal, 2, 2, 1, 1000, &cache);
        assert_eq!(r.width, MAX_LANES);
        assert_eq!(r.walks, r.total.div_ceil(MAX_LANES));
    }

    #[test]
    fn monte_carlo_is_deterministic_and_partitions() {
        let a = monte_carlo_campaign(PaperDesign::TimeOptimal, 2, 2, 9, 12, 0.02);
        let b = monte_carlo_campaign(PaperDesign::TimeOptimal, 2, 2, 9, 12, 0.02);
        assert_eq!(a.masked + a.detected + a.sdc, a.trials);
        assert_eq!(a.masked, b.masked);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.sdc, b.sdc);
        assert!(
            a.mean_injected > 0.0,
            "rate 0.02 over 160 samples should hit"
        );
        for (x, y) in a.details.iter().zip(&b.details) {
            assert_eq!(x.injected, y.injected);
            assert_eq!(x.interpreted, y.interpreted);
        }
    }
}
