#![warn(missing_docs)]

//! # bitlevel-fault
//!
//! Deterministic fault injection and ABFT resilience analysis for the
//! bit-level systolic engines:
//!
//! * [`plan`] — serializable, seed-deterministic [`FaultPlan`]s (transient
//!   bit flips, stuck-at cells, dead PEs, dropped/duplicated link
//!   transfers), targeted by `(pe, cycle)` or sampled by rate, lowered by
//!   [`FaultPlan::resolve`] into a pure-lookup
//!   [`bitlevel_systolic::FaultInjector`] that perturbs the interpreted
//!   clocked engine, the mapped timing simulator and the compiled backend
//!   bit-identically;
//! * [`abft`] — algorithm-based fault tolerance for the (3.12) matmul:
//!   input-derived row/column checksums mod `2^{2p−1}`, syndrome decoding
//!   after drain, and the masked / detected / silent-data-corruption
//!   classification of [`FaultOutcome`];
//! * [`campaign`] — the experiment E17/E20 drivers: the exhaustive
//!   single-fault sweep (every index point × every signal bit, run on both
//!   engines, with the zero-SDC guarantee for single transient flips), its
//!   lane-packed form [`batched_single_fault_campaign`] (up to 64 distinct
//!   fault cases per word-wide compiled walk, case-for-case identical to
//!   the scalar sweep), its worker-pool form
//!   [`partitioned_single_fault_campaign`] (every case executed on an
//!   LSGP-partitioned fixed physical pool and cross-checked against the
//!   compiled engine) and seeded Monte Carlo multi-fault campaigns, all
//!   compiling through a shared `CompileCache`, exporting
//!   [`FaultCampaignReport`] as CSV/JSON plus the per-PE vulnerability data
//!   behind the Fig. 4 vs Fig. 5 critical-PE heat map.

pub mod abft;
pub mod campaign;
pub mod plan;

pub use abft::{checksum_modulus, FaultOutcome, MatmulChecksums, SyndromeSet};
pub use campaign::{
    batched_single_fault_campaign, matmul_structure, monte_carlo_campaign,
    monte_carlo_campaign_with_cache, operand_matrices, partitioned_single_fault_campaign,
    single_fault_campaign, single_fault_campaign_with_cache, BatchedFaultCampaignReport,
    BatchedFaultCase, FaultCampaignReport, FaultCase, MonteCarloReport, MonteCarloTrial,
    PartitionedCampaignReport, PartitionedFaultCase,
};
pub use plan::{
    FaultKind, FaultPlan, RandomFault, ResolvedFault, ResolvedFaultPlan, TargetedFault,
};
