//! Direction-vector dependence analysis (Banerjee [1], chapter-style).
//!
//! Beyond the yes/no screening of [`crate::tests_classic`], classical
//! dependence analysis refines a dependence by its **direction vector**: for
//! each loop axis, whether the source iteration is earlier (`<`), equal
//! (`=`) or later (`>`) than the sink. Direction vectors drive loop
//! transformations and, in the systolic context, tell which axes a
//! dependence actually crosses. This module implements the hierarchical
//! direction-vector test — Banerjee bounds evaluated under per-axis
//! direction constraints — plus the exact classification of enumerated
//! instances it is validated against.

use crate::exact::DependenceInstances;
use bitlevel_ir::{AffineFn, BoxSet};
use bitlevel_linalg::IVec;
use serde::Serialize;
use std::collections::BTreeSet;

/// Per-axis direction of a dependence (sink relative to source).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Dir {
    /// Source iteration strictly earlier on this axis (`d > 0`, "<").
    Lt,
    /// Same iteration on this axis (`d = 0`, "=").
    Eq,
    /// Source iteration strictly later on this axis (`d < 0`, ">").
    Gt,
    /// Unconstrained.
    Any,
}

impl Dir {
    /// Whether a concrete per-axis distance satisfies this direction.
    pub fn admits(self, distance: i64) -> bool {
        match self {
            Dir::Lt => distance > 0,
            Dir::Eq => distance == 0,
            Dir::Gt => distance < 0,
            Dir::Any => true,
        }
    }
}

/// Verdict of the directed Banerjee test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectedVerdict {
    /// A dependence with this direction vector may exist.
    MayDepend,
    /// No dependence with this direction vector exists.
    Independent,
}

/// Range (min, max) of `a·j − b·j'` over `j, j' ∈ [l, u]` subject to the
/// direction constraint between `j` (source/write) and `j'` (sink/read):
/// `Lt` means the *sink* is later (`j' > j`). Returns `None` when the
/// constraint is unsatisfiable (e.g. `Lt` on a single-point axis).
///
/// Closed form (Banerjee's `h`-function style), `O(1)`:
///
/// * `Any` — the two variables are independent:
///   `max = a⁺u − a⁻l + b⁻u − b⁺l` (min symmetric);
/// * `Eq` — one variable with coefficient `a − b`;
/// * `Lt` — substitute `j' = j + d`, `d ∈ [1, u−l]`: the objective
///   `(a−b)·j − b·d` is, for each `d`, maximised at a `j`-endpoint, and the
///   resulting expression is **linear in d**, so the extreme lies at
///   `d = 1` or `d = u − l`;
/// * `Gt` — mirror of `Lt`.
fn directed_term_range(a: i64, b: i64, l: i64, u: i64, dir: Dir) -> Option<(i64, i64)> {
    let pos = |x: i64| x.max(0);
    let neg = |x: i64| (-x).max(0);
    match dir {
        Dir::Any => {
            let max = pos(a) * u - neg(a) * l + neg(b) * u - pos(b) * l;
            let min = -(neg(a) * u - pos(a) * l + pos(b) * u - neg(b) * l);
            Some((min, max))
        }
        Dir::Eq => {
            let c = a - b;
            Some((pos(c) * l - neg(c) * u, pos(c) * u - neg(c) * l))
        }
        Dir::Lt | Dir::Gt => {
            if u == l {
                return None; // strict inequality unsatisfiable on one point
            }
            // For Lt: f = (a−b)·j − b·d with j ∈ [l, u−d], d ∈ [1, u−l].
            // For Gt: swap the roles (j = j' + d): f = (a−b)·j' + a·d.
            let (c, w) = match dir {
                Dir::Lt => (a - b, -b),
                _ => (a - b, a),
            };
            let at = |d: i64| {
                // j ranges over [l, u−d] (Lt) / j' over [l, u−d] (Gt).
                let hi = pos(c) * (u - d) - neg(c) * l + w * d;
                let lo = pos(c) * l - neg(c) * (u - d) + w * d;
                (lo.min(hi), lo.max(hi))
            };
            let (lo1, hi1) = at(1);
            let (lo2, hi2) = at(u - l);
            Some((lo1.min(lo2), hi1.max(hi2)))
        }
    }
}

/// The brute-force reference for [`directed_term_range`]: exact enumeration
/// over the axis box. Used by the property tests as the oracle; `O((u−l)²)`.
#[doc(hidden)]
pub fn directed_term_range_enumerated(
    a: i64,
    b: i64,
    l: i64,
    u: i64,
    dir: Dir,
) -> Option<(i64, i64)> {
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    let mut any = false;
    for j in l..=u {
        for jp in l..=u {
            let ok = match dir {
                Dir::Lt => jp > j,
                Dir::Eq => jp == j,
                Dir::Gt => jp < j,
                Dir::Any => true,
            };
            if ok {
                let v = a * j - b * jp;
                min = min.min(v);
                max = max.max(v);
                any = true;
            }
        }
    }
    any.then_some((min, max))
}

/// The directed Banerjee test: can the write `A_w·j̄ + b̄_w` and the read
/// `A_r·j̄' + b̄_r` touch the same element with the sink displaced from the
/// source according to `dirs`? Sound: `Independent` is definitive,
/// `MayDepend` is conservative.
///
/// # Panics
/// Panics on arity/dimension mismatches.
pub fn banerjee_directed(
    write: &AffineFn,
    read: &AffineFn,
    bounds: &BoxSet,
    dirs: &[Dir],
) -> DirectedVerdict {
    let n = bounds.dim();
    assert_eq!(write.input_dim(), n, "write access dimension mismatch");
    assert_eq!(read.input_dim(), n, "read access dimension mismatch");
    assert_eq!(dirs.len(), n, "one direction per axis required");
    assert_eq!(
        write.output_dim(),
        read.output_dim(),
        "subscript arity mismatch"
    );

    for r in 0..write.output_dim() {
        let c = read.offset[r] - write.offset[r];
        let mut min = 0i64;
        let mut max = 0i64;
        #[allow(clippy::needless_range_loop)] // i indexes four parallel structures
        for i in 0..n {
            match directed_term_range(
                write.matrix[(r, i)],
                read.matrix[(r, i)],
                bounds.lower()[i],
                bounds.upper()[i],
                dirs[i],
            ) {
                Some((lo, hi)) => {
                    min += lo;
                    max += hi;
                }
                None => return DirectedVerdict::Independent, // constraint unsatisfiable
            }
        }
        if c < min || c > max {
            return DirectedVerdict::Independent;
        }
    }
    DirectedVerdict::MayDepend
}

/// All direction vectors realised by a set of exact dependence instances —
/// the ground truth the directed test is checked against. Each instance
/// `(j̄, d̄)` contributes the sign pattern of `d̄`.
pub fn realized_directions(instances: &DependenceInstances) -> BTreeSet<Vec<Dir>> {
    let mut out = BTreeSet::new();
    for d in instances.keys() {
        out.insert(signs_of(d));
    }
    out
}

/// The sign pattern of one dependence vector.
pub fn signs_of(d: &IVec) -> Vec<Dir> {
    d.iter()
        .map(|&x| {
            if x > 0 {
                Dir::Lt
            } else if x < 0 {
                Dir::Gt
            } else {
                Dir::Eq
            }
        })
        .collect()
}

/// Enumerates the full direction hierarchy of one access pair: every
/// all-concrete direction vector (`Lt`/`Eq`/`Gt` per axis, no `Any`) that
/// the directed Banerjee test cannot rule out.
pub fn surviving_directions(write: &AffineFn, read: &AffineFn, bounds: &BoxSet) -> Vec<Vec<Dir>> {
    let n = bounds.dim();
    let dirs = [Dir::Lt, Dir::Eq, Dir::Gt];
    let total = 3usize.pow(n as u32);
    let mut out = Vec::new();
    for code in 0..total {
        let mut v = Vec::with_capacity(n);
        let mut c = code;
        for _ in 0..n {
            v.push(dirs[c % 3]);
            c /= 3;
        }
        if banerjee_directed(write, read, bounds, &v) == DirectedVerdict::MayDepend {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::enumerate_dependences;
    use bitlevel_ir::{Access, LoopNest, OpKind, Statement, WordLevelAlgorithm};
    use bitlevel_linalg::IMat;
    use proptest::prelude::*;

    #[test]
    fn matmul_pipelines_have_single_directions() {
        // The z accumulation z(j̄) <- z(j̄ − [0,0,1]): direction (=, =, <).
        let b = BoxSet::cube(3, 1, 4);
        let write = AffineFn::identity(3);
        let read = AffineFn::shift_back(&IVec::from([0, 0, 1]));
        assert_eq!(
            banerjee_directed(&write, &read, &b, &[Dir::Eq, Dir::Eq, Dir::Lt]),
            DirectedVerdict::MayDepend
        );
        // Any other concrete direction is ruled out.
        let surviving = surviving_directions(&write, &read, &b);
        assert_eq!(surviving, vec![vec![Dir::Eq, Dir::Eq, Dir::Lt]]);
    }

    #[test]
    fn anti_diagonal_access_has_mixed_direction() {
        // Convolution's x(j1 + j2 − 1): distance vectors along [1, −1]:
        // direction (<, >).
        let b = BoxSet::cube(2, 1, 4);
        let write = AffineFn::new(IMat::from_rows(&[&[1, 1]]), IVec::from([-1]));
        let read = write.clone();
        let surviving = surviving_directions(&write, &read, &b);
        // (=,=) is the same-iteration case; the real cross-iteration
        // directions are (<,>) and (>,<).
        assert!(surviving.contains(&vec![Dir::Lt, Dir::Gt]));
        assert!(surviving.contains(&vec![Dir::Gt, Dir::Lt]));
        assert!(!surviving.contains(&vec![Dir::Lt, Dir::Lt]));
        assert!(!surviving.contains(&vec![Dir::Lt, Dir::Eq]));
    }

    #[test]
    fn unsatisfiable_direction_on_degenerate_axis() {
        // Single-point axis: Lt/Gt are unsatisfiable.
        let b = BoxSet::new(IVec::from([1, 1]), IVec::from([1, 4]));
        let write = AffineFn::identity(2);
        let read = AffineFn::shift_back(&IVec::from([0, 1]));
        assert_eq!(
            banerjee_directed(&write, &read, &b, &[Dir::Lt, Dir::Any]),
            DirectedVerdict::Independent
        );
        assert_eq!(
            banerjee_directed(&write, &read, &b, &[Dir::Eq, Dir::Lt]),
            DirectedVerdict::MayDepend
        );
    }

    #[test]
    fn realized_directions_of_word_level_matmul() {
        let inst = enumerate_dependences(&WordLevelAlgorithm::matmul(3).nest());
        let dirs = realized_directions(&inst);
        // Exactly the three unit-direction patterns of D in (2.4).
        assert_eq!(dirs.len(), 3);
        assert!(dirs.contains(&vec![Dir::Lt, Dir::Eq, Dir::Eq]));
        assert!(dirs.contains(&vec![Dir::Eq, Dir::Lt, Dir::Eq]));
        assert!(dirs.contains(&vec![Dir::Eq, Dir::Eq, Dir::Lt]));
    }

    proptest! {
        /// The closed-form directed term range equals exhaustive enumeration
        /// for every direction and random coefficients/bounds.
        #[test]
        fn prop_closed_form_equals_enumeration(
            a in -5i64..6, b in -5i64..6, l in -4i64..5, ext in 0i64..6,
        ) {
            let u = l + ext;
            for dir in [Dir::Any, Dir::Eq, Dir::Lt, Dir::Gt] {
                prop_assert_eq!(
                    directed_term_range(a, b, l, u, dir),
                    directed_term_range_enumerated(a, b, l, u, dir),
                    "a={} b={} l={} u={} {:?}", a, b, l, u, dir
                );
            }
        }

        /// Soundness: every direction realised by exact instances must
        /// survive the directed Banerjee test.
        #[test]
        fn prop_directed_test_is_sound(
            rm in proptest::collection::vec(-2i64..3, 4),
            rb in proptest::collection::vec(-3i64..4, 2),
        ) {
            let bounds = BoxSet::cube(2, 1, 4);
            let write = AffineFn::identity(2);
            let read = AffineFn::new(IMat::from_flat(2, 2, rm), IVec(rb));
            let nest = LoopNest::new(
                bounds.clone(),
                vec![
                    Statement::new(Access::new("t", write.clone()), vec![], OpKind::Other("w".into())),
                    Statement::new(
                        Access::new("u", AffineFn::identity(2)),
                        vec![Access::new("t", read.clone())],
                        OpKind::Copy,
                    ),
                ],
            );
            let exact = enumerate_dependences(&nest);
            for dir in realized_directions(&exact) {
                prop_assert_eq!(
                    banerjee_directed(&write, &read, &bounds, &dir),
                    DirectedVerdict::MayDepend,
                    "realized direction {:?} wrongly ruled out", dir
                );
            }
        }
    }
}
