//! Compositional bit-level dependence analysis — **Theorem 3.1**.
//!
//! The paper's central contribution: the dependence structure of an expanded
//! bit-level algorithm is a *function* of
//!
//! 1. the word-level dependence structure `(J_w, D_w)` of model (3.5),
//! 2. the dependence structure `(J_as, D_as)` of the arithmetic algorithm
//!    implementing the word-wise multiply–accumulate (add-shift, eq. (3.4)),
//! 3. the algorithm expansion (Expansion I or II, Fig. 2/3),
//!
//! and can be written down **directly** — no Diophantine solving, no search
//! over the (much larger) bit-level index set. The compound index set is
//! `J = J_w × J_as` (3.11a) and the dependence matrices are (3.11b)/(3.11c):
//!
//! ```text
//!        x      y      z      x       y,c     z       c'
//! D  = [ h̄₁     h̄₂     h̄₃     0̄       0̄       0̄       0̄  ]
//!      [ 0̄      0̄      0̄      δ̄₁      δ̄₂      δ̄₃     [0,2]ᵀ ]
//! I:    i₁=1   i₂=1   q̄      i₁≠1    i₂≠1    jₙ=uₙ   q̄₁
//! II:   i₁=1   i₂=1   q̄₂     i₁≠1    i₂≠1    q̄       i₁=p
//! ```
//!
//! with `q̄₁ : (i₁≠1 or i₂∉{1,2}) and jₙ=uₙ` and `q̄₂ : i₁=p or i₂=1`.
//!
//! ### Naming note
//! The paper's figure captions for Expansions I/II are internally
//! inconsistent (see DESIGN.md); we follow the dependence matrices: in
//! **Expansion I** the partial sums of `z(j̄−h̄₃)` are forwarded point-to-point
//! (`d̄₃` uniform, tile drain `d̄₆` only on the last hyperplane), in
//! **Expansion II** the completed value of `z(j̄−h̄₃)` is injected at the tile
//! boundary (`d̄₃` valid at `q̄₂`, `d̄₆` uniform). Example 3.1 / eq. (3.12)
//! uses Expansion II.

use bitlevel_arith::AddShift;
use bitlevel_ir::{AlgorithmTriplet, Dependence, DependenceSet, Predicate, WordLevelAlgorithm};
use bitlevel_linalg::IVec;
use serde::{Deserialize, Serialize};

/// The two algorithm expansions of Section 3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expansion {
    /// Partial-sum forwarding: the `p²` partial-sum bits of `z(j̄−h̄₃)` are
    /// sent point-to-point to iteration `j̄` (`d̄₃` uniform); the add-shift
    /// drain `d̄₆` runs only at `jₙ = uₙ`. Faster and more computationally
    /// uniform.
    I,
    /// Boundary injection: the completed `2p−1` bits of `z(j̄−h̄₃)` are added
    /// at the boundary points `i₁ = p` or `i₂ = 1` (`d̄₃` valid at `q̄₂`);
    /// the drain `d̄₆` is uniform. Used by Example 3.1 and both Section 4
    /// architectures.
    II,
}

impl std::fmt::Display for Expansion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expansion::I => write!(f, "Expansion I"),
            Expansion::II => write!(f, "Expansion II"),
        }
    }
}

/// Derives the bit-level dependence structure of `word` expanded with the
/// add-shift multiplier of word length `p`, per Theorem 3.1.
///
/// The result has `n + 2` axes (`j₁…jₙ, i₁, i₂`) and up to seven dependence
/// columns `d̄₁…d̄₇` in the paper's order; the `d̄₁`/`d̄₂` columns are omitted
/// when the word-level operand has no reuse (`h̄₁`/`h̄₂` absent, e.g.
/// matrix–vector products).
///
/// This runs in `O(n)` time and never touches the compound index set — that
/// is the paper's point. Compare with
/// [`crate::exact`] which walks all `|J_w|·p²` points.
///
/// # Examples
///
/// The paper's Example 3.1 (eqs. (3.12)–(3.13)):
///
/// ```
/// use bitlevel_depanal::{compose, Expansion};
/// use bitlevel_ir::WordLevelAlgorithm;
///
/// let alg = compose(&WordLevelAlgorithm::matmul(3), 3, Expansion::II);
/// assert_eq!(alg.dim(), 5);              // j1, j2, j3, i1, i2
/// assert_eq!(alg.deps.len(), 7);         // d̄₁ … d̄₇
/// assert_eq!(alg.index_set.cardinality(), 27 * 9);
/// // d̄₆ is uniform in Expansion II, d̄₃ is boundary-only.
/// assert!(alg.deps.get(5).is_uniform_over(&alg.index_set));
/// assert!(!alg.deps.get(2).is_uniform_over(&alg.index_set));
/// ```
pub fn compose(word: &WordLevelAlgorithm, p: usize, expansion: Expansion) -> AlgorithmTriplet {
    assert!(p >= 1, "word length must be at least 1");
    let n = word.dim();
    let arith = AddShift::new(p);
    let jw = word.bounds.clone();
    let jas = arith.index_set();
    let j = jw.product(&jas);

    // Axis indices of i₁ and i₂ in the compound space.
    let i1 = n;
    let i2 = n + 1;
    let pi = p as i64;

    // Embedding helpers per (3.10): word vectors get two trailing zeros,
    // arithmetic vectors get n leading zeros.
    let lift_word = |h: &IVec| h.concat(&IVec::zeros(2));
    let lift_arith = |d: &IVec| IVec::zeros(n).concat(d);

    let mut deps: Vec<Dependence> = Vec::with_capacity(7);

    // d̄₁ = [h̄₁ᵀ, 0, 0]ᵀ, valid at i₁ = 1: word-level pipelining of x bits.
    if let Some(h1) = &word.h1 {
        deps.push(Dependence::conditional(
            lift_word(h1),
            "x",
            Predicate::eq_const(i1, 1),
        ));
    }
    // d̄₂ = [h̄₂ᵀ, 0, 0]ᵀ, valid at i₂ = 1: word-level pipelining of y bits.
    if let Some(h2) = &word.h2 {
        deps.push(Dependence::conditional(
            lift_word(h2),
            "y",
            Predicate::eq_const(i2, 1),
        ));
    }
    // d̄₃ = [h̄₃ᵀ, 0, 0]ᵀ: accumulation across word-level iterations.
    let d3_validity = match expansion {
        Expansion::I => Predicate::always(),
        // q̄₂ : i₁ = p or i₂ = 1.
        Expansion::II => Predicate::eq_const(i1, pi).or(&Predicate::eq_const(i2, 1)),
    };
    deps.push(Dependence::conditional(
        lift_word(&word.h3),
        "z",
        d3_validity,
    ));

    // d̄₄ = [0̄, δ̄₁ᵀ]ᵀ, valid at i₁ ≠ 1: intra-tile pipelining of x bits.
    deps.push(Dependence::conditional(
        lift_arith(&AddShift::delta1()),
        "x",
        Predicate::ne_const(i1, 1),
    ));
    // d̄₅ = [0̄, δ̄₂ᵀ]ᵀ, valid at i₂ ≠ 1: intra-tile y bits and carry chain.
    deps.push(Dependence::conditional(
        lift_arith(&AddShift::delta2()),
        "y,c",
        Predicate::ne_const(i2, 1),
    ));
    // d̄₆ = [0̄, δ̄₃ᵀ]ᵀ: partial-sum drain inside the add-shift tile.
    let d6_validity = match expansion {
        Expansion::I => Predicate::eq_upper(n - 1), // jₙ = uₙ
        Expansion::II => Predicate::always(),
    };
    deps.push(Dependence::conditional(
        lift_arith(&AddShift::delta3()),
        "z",
        d6_validity,
    ));
    // d̄₇ = [0̄, 0, 2]ᵀ = [0̄, δ̄₄ᵀ]ᵀ: the second carry c'.
    let d7_validity = match expansion {
        // q̄₁ : (i₁ ≠ 1 or i₂ ∉ {1,2}) and jₙ = uₙ.
        Expansion::I => Predicate::ne_const(i1, 1)
            .or(&Predicate::not_in(i2, &[1, 2]))
            .and(&Predicate::eq_upper(n - 1)),
        Expansion::II => Predicate::eq_const(i1, pi),
    };
    deps.push(Dependence::conditional(
        lift_arith(&IVec::from([0, 2])),
        "c'",
        d7_validity,
    ));

    let mut axis_names: Vec<String> = (1..=n).map(|k| format!("j{k}")).collect();
    axis_names.push("i1".to_string());
    axis_names.push("i2".to_string());
    let names: Vec<&str> = axis_names.iter().map(|s| s.as_str()).collect();

    AlgorithmTriplet::new(
        j,
        DependenceSet::new(deps),
        &format!(
            "bit-level {} (add-shift, p = {p}, {expansion}): full-adder cells over J_w x J_as",
            word.name
        ),
    )
    .with_axis_names(&names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_linalg::IMat;

    #[test]
    fn matmul_expansion_ii_matches_eq_3_12_and_3_13() {
        // Example 3.1: u × u matmul, word length p.
        let (u, p) = (3, 3);
        let alg = compose(&WordLevelAlgorithm::matmul(u), p, Expansion::II);

        // Index set (3.13): 5-D, 1..u on word axes, 1..p on bit axes.
        assert_eq!(alg.dim(), 5);
        assert_eq!(
            alg.index_set.cardinality(),
            (u as u128).pow(3) * (p as u128).pow(2)
        );

        // Dependence matrix (3.12). Paper column order: y, x, z, x, y/c, z, c'
        // — we emit in model order x, y, z, …, so compare as column sets.
        let expected = IMat::from_rows(&[
            // x         y         z        d4       d5        d6       d7
            &[0, 1, 0, 0, 0, 0, 0],
            &[1, 0, 0, 0, 0, 0, 0],
            &[0, 0, 1, 0, 0, 0, 0],
            &[0, 0, 0, 1, 0, 1, 0],
            &[0, 0, 0, 0, 1, -1, 2],
        ]);
        assert_eq!(alg.dependence_matrix(), expected);

        // Validity regions: d1 at i1=1, d2 at i2=1, d3 at q̄2, d4 at i1≠1,
        // d5 at i2≠1, d6 uniform, d7 at i1=p.
        let set = &alg.index_set;
        let at = |j1: i64, j2: i64, j3: i64, i1: i64, i2: i64| IVec::from([j1, j2, j3, i1, i2]);
        let d = &alg.deps;
        assert!(d.get(0).validity.eval(&at(2, 2, 2, 1, 2), set));
        assert!(!d.get(0).validity.eval(&at(2, 2, 2, 2, 2), set));
        assert!(d.get(1).validity.eval(&at(2, 2, 2, 2, 1), set));
        assert!(!d.get(1).validity.eval(&at(2, 2, 2, 2, 2), set));
        // d3: boundary q̄2 only (Expansion II).
        assert!(d.get(2).validity.eval(&at(2, 2, 2, 3, 2), set)); // i1 = p
        assert!(d.get(2).validity.eval(&at(2, 2, 2, 2, 1), set)); // i2 = 1
        assert!(!d.get(2).validity.eval(&at(2, 2, 2, 2, 2), set));
        // d6 uniform in Expansion II.
        assert!(d.get(5).is_uniform_over(set));
        // d7 at i1 = p.
        assert!(d.get(6).validity.eval(&at(1, 1, 1, 3, 1), set));
        assert!(!d.get(6).validity.eval(&at(1, 1, 1, 2, 1), set));
    }

    #[test]
    fn one_dimensional_expansion_i_matches_eq_3_8() {
        // Program (3.7) with h1 = h2 = h3 = 1 (scalars), l = 1, u = 4, p = 3.
        let word = WordLevelAlgorithm::new(
            "1-D recurrence",
            bitlevel_ir::BoxSet::cube(1, 1, 4),
            Some(IVec::from([1])),
            Some(IVec::from([1])),
            IVec::from([1]),
        );
        let alg = compose(&word, 3, Expansion::I);
        assert_eq!(alg.dim(), 3);

        let expected = IMat::from_rows(&[
            &[1, 1, 1, 0, 0, 0, 0],
            &[0, 0, 0, 1, 0, 1, 0],
            &[0, 0, 0, 0, 1, -1, 2],
        ]);
        assert_eq!(alg.dependence_matrix(), expected);

        let set = &alg.index_set;
        let d = &alg.deps;
        // d3 uniform in Expansion I.
        assert!(d.get(2).is_uniform_over(set));
        // d6 valid only at j = u = 4.
        assert!(d.get(5).validity.eval(&IVec::from([4, 2, 2]), set));
        assert!(!d.get(5).validity.eval(&IVec::from([3, 2, 2]), set));
        // d7 at q̄1: (i1≠1 or i2∉{1,2}) and j=u.
        let q7 = &d.get(6).validity;
        assert!(q7.eval(&IVec::from([4, 2, 1]), set)); // i1≠1
        assert!(q7.eval(&IVec::from([4, 1, 3]), set)); // i2∉{1,2}
        assert!(!q7.eval(&IVec::from([4, 1, 2]), set));
        assert!(!q7.eval(&IVec::from([3, 2, 3]), set)); // j≠u
    }

    #[test]
    fn expansions_share_vectors_and_differ_only_in_validity() {
        let word = WordLevelAlgorithm::matmul(2);
        let a = compose(&word, 2, Expansion::I);
        let b = compose(&word, 2, Expansion::II);
        assert_eq!(a.dependence_matrix(), b.dependence_matrix());
        assert_eq!(a.index_set, b.index_set);
        // d3's validity differs.
        assert!(a.deps.get(2).is_uniform_over(&a.index_set));
        assert!(!b.deps.get(2).is_uniform_over(&b.index_set));
    }

    #[test]
    fn matvec_omits_the_y_column() {
        let alg = compose(&WordLevelAlgorithm::matvec(3, 3), 2, Expansion::II);
        // 6 columns: x, z, d4, d5, d6, d7 (no word-level y pipelining).
        assert_eq!(alg.deps.len(), 6);
        assert_eq!(alg.dim(), 4);
        let causes: Vec<&str> = alg.deps.iter().map(|d| d.cause.as_str()).collect();
        assert_eq!(causes, vec!["x", "z", "x", "y,c", "z", "c'"]);
    }

    #[test]
    fn theorem_3_1_block_structure() {
        // D = [D_w 0 0̄; 0 D_as δ̄₄] — check the block-diagonal shape directly.
        let word = WordLevelAlgorithm::matmul(4);
        let alg = compose(&word, 5, Expansion::I);
        let d = alg.dependence_matrix();
        // Word rows of arithmetic columns are zero.
        for r in 0..3 {
            for c in 3..7 {
                assert_eq!(d[(r, c)], 0);
            }
        }
        // Arithmetic rows of word columns are zero.
        for r in 3..5 {
            for c in 0..3 {
                assert_eq!(d[(r, c)], 0);
            }
        }
        // δ̄₄ = [0, 2]ᵀ in the last column.
        assert_eq!(d[(3, 6)], 0);
        assert_eq!(d[(4, 6)], 2);
    }

    #[test]
    fn composition_is_independent_of_index_set_size() {
        // The derivation must not iterate the compound set: structure for a
        // huge u/p must come out instantly with the same shape.
        let alg = compose(&WordLevelAlgorithm::matmul(1000), 64, Expansion::II);
        assert_eq!(alg.deps.len(), 7);
        assert_eq!(alg.index_set.cardinality(), 1000u128.pow(3) * 64u128.pow(2));
    }
}
