//! Validating and timing compositional vs general dependence analysis.
//!
//! The paper's headline claim is methodological: Theorem 3.1 yields the
//! bit-level dependence structure "without using time consuming general
//! dependence analysis methods". This module packages both sides for the
//! experiment harness (E3): it checks that the compositional structure is
//! *semantically identical* to ground truth on concrete instances, and times
//! the two derivation routes.

use crate::compose::{compose, Expansion};
use crate::exact::{
    diophantine_dependences, enumerate_dependences, instances_of_triplet, DependenceInstances,
};
use crate::expand::expand;
use bitlevel_ir::WordLevelAlgorithm;
use serde::Serialize;
use std::time::{Duration, Instant};

/// Result of one compositional-vs-general comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonReport {
    /// Word-level algorithm name.
    pub algorithm: String,
    /// Which expansion was analysed.
    pub expansion: String,
    /// Word length.
    pub p: usize,
    /// Compound index-set size `|J_w|·p²`.
    pub index_points: u128,
    /// Whether the compositional structure matches exhaustive ground truth.
    pub matches_enumeration: bool,
    /// Whether the Diophantine route also matches ground truth.
    pub diophantine_matches: bool,
    /// Time to derive the structure via Theorem 3.1.
    pub compose_time: Duration,
    /// Time of the exhaustive enumeration baseline.
    pub enumerate_time: Duration,
    /// Time of the Diophantine-solve-plus-verify baseline.
    pub diophantine_time: Duration,
}

impl ComparisonReport {
    /// Speedup of the compositional derivation over the Diophantine method.
    pub fn speedup_vs_diophantine(&self) -> f64 {
        self.diophantine_time.as_secs_f64() / self.compose_time.as_secs_f64().max(1e-12)
    }

    /// Speedup of the compositional derivation over exhaustive enumeration.
    pub fn speedup_vs_enumeration(&self) -> f64 {
        self.enumerate_time.as_secs_f64() / self.compose_time.as_secs_f64().max(1e-12)
    }
}

/// Runs all three analyses for one (algorithm, p, expansion) instance and
/// cross-checks them.
pub fn compare_analyses(
    word: &WordLevelAlgorithm,
    p: usize,
    expansion: Expansion,
) -> ComparisonReport {
    let t0 = Instant::now();
    let composed = compose(word, p, expansion);
    let compose_time = t0.elapsed();

    let nest = expand(word, p, expansion);

    let t1 = Instant::now();
    let ground_truth = enumerate_dependences(&nest);
    let enumerate_time = t1.elapsed();

    let t2 = Instant::now();
    let dio = diophantine_dependences(&nest);
    let diophantine_time = t2.elapsed();

    let composed_instances = instances_of_triplet(&composed);

    ComparisonReport {
        algorithm: word.name.clone(),
        expansion: expansion.to_string(),
        p,
        index_points: composed.index_set.cardinality(),
        matches_enumeration: composed_instances == ground_truth,
        diophantine_matches: dio == ground_truth,
        compose_time,
        enumerate_time,
        diophantine_time,
    }
}

/// Checks only the structural agreement (no timing) — used by tests.
pub fn structures_agree(word: &WordLevelAlgorithm, p: usize, expansion: Expansion) -> bool {
    let composed = compose(word, p, expansion);
    let nest = expand(word, p, expansion);
    instances_of_triplet(&composed) == enumerate_dependences(&nest)
}

/// Pretty one-line summary of a report (used by the experiment harness).
pub fn summarize(r: &ComparisonReport) -> String {
    format!(
        "{} / {} / p={}: |J|={}, compose {:?} vs enumerate {:?} ({:.0}x) vs diophantine {:?} ({:.0}x), agree={}",
        r.algorithm,
        r.expansion,
        r.p,
        r.index_points,
        r.compose_time,
        r.enumerate_time,
        r.speedup_vs_enumeration(),
        r.diophantine_time,
        r.speedup_vs_diophantine(),
        r.matches_enumeration && r.diophantine_matches,
    )
}

/// Detailed mismatch diagnostics for debugging: the instances present in one
/// side but not the other, truncated to `limit` entries per direction.
pub fn diff_instances(
    a: &DependenceInstances,
    b: &DependenceInstances,
    limit: usize,
) -> Vec<String> {
    let mut out = Vec::new();
    for (v, pts) in a {
        match b.get(v) {
            None => out.push(format!("vector {v} only on left ({} points)", pts.len())),
            Some(bp) => {
                for p in pts.difference(bp).take(limit) {
                    out.push(format!("instance ({p}, {v}) only on left"));
                }
                for p in bp.difference(pts).take(limit) {
                    out.push(format!("instance ({p}, {v}) only on right"));
                }
            }
        }
        if out.len() >= limit {
            break;
        }
    }
    for v in b.keys() {
        if !a.contains_key(v) {
            out.push(format!("vector {v} only on right"));
        }
    }
    out.truncate(limit);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_expansion_ii_agrees_with_ground_truth() {
        // The paper's Example 3.1 instance (small sizes for the exhaustive
        // baseline).
        assert!(structures_agree(
            &WordLevelAlgorithm::matmul(2),
            2,
            Expansion::II
        ));
        assert!(structures_agree(
            &WordLevelAlgorithm::matmul(2),
            3,
            Expansion::II
        ));
        assert!(structures_agree(
            &WordLevelAlgorithm::matmul(3),
            2,
            Expansion::II
        ));
    }

    #[test]
    fn matmul_expansion_i_agrees_with_ground_truth() {
        assert!(structures_agree(
            &WordLevelAlgorithm::matmul(2),
            2,
            Expansion::I
        ));
        assert!(structures_agree(
            &WordLevelAlgorithm::matmul(2),
            3,
            Expansion::I
        ));
    }

    #[test]
    fn one_dimensional_recurrence_agrees_both_expansions() {
        // Program (3.7), the paper's worked 1-D example (Fig. 3).
        let word = WordLevelAlgorithm::new(
            "1-D recurrence",
            bitlevel_ir::BoxSet::cube(1, 1, 4),
            Some([1].into()),
            Some([1].into()),
            [1].into(),
        );
        assert!(structures_agree(&word, 3, Expansion::I));
        assert!(structures_agree(&word, 3, Expansion::II));
    }

    #[test]
    fn convolution_agrees() {
        let word = WordLevelAlgorithm::convolution(3, 2);
        assert!(structures_agree(&word, 2, Expansion::I));
        assert!(structures_agree(&word, 2, Expansion::II));
    }

    #[test]
    fn matvec_partial_model_agrees() {
        let word = WordLevelAlgorithm::matvec(3, 3);
        assert!(structures_agree(&word, 2, Expansion::I));
        assert!(structures_agree(&word, 2, Expansion::II));
    }

    #[test]
    fn full_report_is_consistent() {
        let r = compare_analyses(&WordLevelAlgorithm::matmul(2), 2, Expansion::II);
        assert!(r.matches_enumeration);
        assert!(r.diophantine_matches);
        assert_eq!(r.index_points, 8 * 4);
        assert!(r.speedup_vs_enumeration() > 0.0);
        let line = summarize(&r);
        assert!(line.contains("agree=true"), "{line}");
    }

    #[test]
    fn diff_instances_reports_mismatches() {
        use bitlevel_linalg::IVec;
        use std::collections::BTreeMap;
        let mut a: DependenceInstances = BTreeMap::new();
        let mut b: DependenceInstances = BTreeMap::new();
        a.entry(IVec::from([1]))
            .or_default()
            .insert(IVec::from([2]));
        b.entry(IVec::from([2]))
            .or_default()
            .insert(IVec::from([3]));
        let d = diff_instances(&a, &b, 10);
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|s| s.contains("left")));
        assert!(d.iter().any(|s| s.contains("right")));
    }
}
