#![warn(missing_docs)]

//! # bitlevel-depanal
//!
//! Dependence analysis for bit-level algorithms — the paper's primary
//! contribution plus the general baselines it is measured against:
//!
//! * [`compose`] — **Theorem 3.1**: the bit-level dependence structure as a
//!   closed-form function of the word-level structure, the add-shift
//!   arithmetic structure, and the algorithm expansion ([`Expansion::I`] /
//!   [`Expansion::II`]). `O(n)` time, never touches the compound index set.
//! * [`expand`] — mechanical algorithm expansion: the explicit
//!   `n+2`-dimensional guarded bit-level loop nest (à la RAB [8]).
//! * [`exact`] — the "time consuming general dependence analysis methods":
//!   exhaustive enumeration (ground truth) and the classical
//!   Diophantine-solve-plus-verification route over the expanded code.
//! * [`tests_classic`] — the GCD and Banerjee screening tests [1].
//! * [`compare`] — cross-validation and timing of all routes (experiment E3).

pub mod compare;
pub mod compose;
pub mod direction;
pub mod exact;
pub mod expand;
pub mod tests_classic;

pub use compare::{compare_analyses, structures_agree, ComparisonReport};
pub use compose::{compose, Expansion};
pub use direction::{
    banerjee_directed, realized_directions, signs_of, surviving_directions, Dir, DirectedVerdict,
};
pub use exact::{
    diophantine_dependences, enumerate_dependences, instances_of_triplet, DependenceInstances,
};
pub use expand::{dependence_candidates, expand, expanded_index_set, expansion_factor};
pub use tests_classic::{banerjee_test, classical_screen, gcd_test, TestVerdict};
