//! Bit-level algorithm expansion: generating the explicit expanded program.
//!
//! "A word-level algorithm of the application can first be expanded into a
//! bit-level algorithm [8]; this is followed by an analysis of the dependence
//! relations of the bit-level algorithm" (Section 1). This module performs
//! the first step mechanically: given a word-level algorithm of model (3.5),
//! the add-shift arithmetic algorithm of word length `p`, and an
//! [`Expansion`], it emits the explicit `n+2`-dimensional guarded loop nest
//! whose statements are the full-adder cells.
//!
//! The result feeds the **general** dependence analysers in [`crate::exact`]
//! — the expensive path the paper's Theorem 3.1 short-circuits. Having both
//! paths lets us *prove* (per instance) that the compositional structure
//! equals the ground truth, and lets the benchmarks measure how much slower
//! the general path is.
//!
//! Arrays of the expanded program (all single-assignment over the compound
//! index space `q̄ = [j̄ᵀ, i₁, i₂]ᵀ`):
//!
//! * `x`, `y` — operand bits, pipelined word-wise at the tile edge
//!   (`i₁ = 1` / `i₂ = 1`) and bit-wise inside the tile;
//! * `z` — partial-sum bits;
//! * `c` — carry bits (chained along `i₂`);
//! * `c'` — the second carry of wide (4–5 input) additions.

use crate::compose::Expansion;
use bitlevel_ir::{
    Access, AffineFn, BoxSet, LoopNest, OpKind, Predicate, Statement, WordLevelAlgorithm,
};
use bitlevel_linalg::{IMat, IVec};

/// Expands `word` with the add-shift multiplier of word length `p` under the
/// given expansion, producing the explicit bit-level loop nest.
pub fn expand(word: &WordLevelAlgorithm, p: usize, expansion: Expansion) -> LoopNest {
    assert!(p >= 1, "word length must be at least 1");
    let n = word.dim();
    let nn = n + 2; // compound dimension
    let i1 = n; // axis index of i₁
    let i2 = n + 1; // axis index of i₂
    let pi = p as i64;

    // Compound index set J = J_w × J_as.
    let bounds = word.bounds.product(&BoxSet::cube(2, 1, pi));

    // Lifted shift vectors.
    let lift_word = |h: &IVec| h.concat(&IVec::zeros(2));
    let d4 = IVec::zeros(n).concat(&IVec::from([1, 0])); // δ̄₁ lifted
    let d5 = IVec::zeros(n).concat(&IVec::from([0, 1])); // δ̄₂ lifted
    let d6 = IVec::zeros(n).concat(&IVec::from([1, -1])); // δ̄₃ lifted
    let d7 = IVec::zeros(n).concat(&IVec::from([0, 2])); // δ̄₄ lifted

    let mut statements = Vec::new();

    // ---- operand-bit pipelining -------------------------------------------
    // x bits enter each tile on the i₁ = 1 edge — from the previous
    // word-level iteration (d̄₁) when the operand is reused, or fresh from
    // outside the index set when it is not (matvec-style operands) — and
    // travel down the tile along i₁ (d̄₄). In both cases every point writes
    // its x bit (the paper's pipelining statements, cf. a(ī) = a(ī − δ̄₁) in
    // (3.3), are unconditional; an edge read whose source lies outside J is
    // an external input and induces no dependence).
    match &word.h1 {
        Some(h1) => {
            statements.push(Statement::guarded(
                Access::new("x", AffineFn::identity(nn)),
                vec![Access::new("x", AffineFn::shift_back(&lift_word(h1)))],
                OpKind::Copy,
                Predicate::eq_const(i1, 1),
            ));
            statements.push(Statement::guarded(
                Access::new("x", AffineFn::identity(nn)),
                vec![Access::new("x", AffineFn::shift_back(&d4))],
                OpKind::Copy,
                Predicate::ne_const(i1, 1),
            ));
        }
        None => statements.push(Statement::new(
            Access::new("x", AffineFn::identity(nn)),
            vec![Access::new("x", AffineFn::shift_back(&d4))],
            OpKind::Copy,
        )),
    }
    // y bits: edge i₂ = 1 (d̄₂), then along i₂ (part of d̄₅) — same scheme.
    match &word.h2 {
        Some(h2) => {
            statements.push(Statement::guarded(
                Access::new("y", AffineFn::identity(nn)),
                vec![Access::new("y", AffineFn::shift_back(&lift_word(h2)))],
                OpKind::Copy,
                Predicate::eq_const(i2, 1),
            ));
            statements.push(Statement::guarded(
                Access::new("y", AffineFn::identity(nn)),
                vec![Access::new("y", AffineFn::shift_back(&d5))],
                OpKind::Copy,
                Predicate::ne_const(i2, 1),
            ));
        }
        None => statements.push(Statement::new(
            Access::new("y", AffineFn::identity(nn)),
            vec![Access::new("y", AffineFn::shift_back(&d5))],
            OpKind::Copy,
        )),
    }

    // ---- the adder cell ---------------------------------------------------
    // Common operands: the partial product x∧y and the carry chain along i₂.
    let pp_inputs = || {
        vec![
            Access::new("x", AffineFn::identity(nn)),
            Access::new("y", AffineFn::identity(nn)),
            Access::new("c", AffineFn::shift_back(&d5)),
        ]
    };
    // Region-dependent z operands.
    let d3 = lift_word(&word.h3);
    match expansion {
        Expansion::I => {
            // Forwarded partial sum z(q̄ − d̄₃) everywhere; on the last
            // word-level hyperplane the tile also drains diagonally (d̄₆) and
            // chains the second carry (d̄₇).
            let interior = Predicate::ne_upper(n - 1);
            let last = Predicate::eq_upper(n - 1);
            let mut interior_inputs = pp_inputs();
            interior_inputs.push(Access::new("z", AffineFn::shift_back(&d3)));
            let mut last_inputs = interior_inputs.clone();
            last_inputs.push(Access::new("z", AffineFn::shift_back(&d6)));
            last_inputs.push(Access::new("c'", AffineFn::shift_back(&d7)));

            statements.push(Statement::guarded(
                Access::new("z", AffineFn::identity(nn)),
                interior_inputs.clone(),
                OpKind::SumBit,
                interior.clone(),
            ));
            statements.push(Statement::guarded(
                Access::new("c", AffineFn::identity(nn)),
                interior_inputs,
                OpKind::CarryBit,
                interior,
            ));
            statements.push(Statement::guarded(
                Access::new("z", AffineFn::identity(nn)),
                last_inputs.clone(),
                OpKind::WideAddOutput(0),
                last.clone(),
            ));
            statements.push(Statement::guarded(
                Access::new("c", AffineFn::identity(nn)),
                last_inputs.clone(),
                OpKind::WideAddOutput(1),
                last.clone(),
            ));
            statements.push(Statement::guarded(
                Access::new("c'", AffineFn::identity(nn)),
                last_inputs,
                OpKind::WideAddOutput(2),
                last,
            ));
        }
        Expansion::II => {
            // The tile always drains diagonally (d̄₆ uniform); completed bits
            // of z(j̄ − h̄₃) are injected on the boundary q̄₂ (i₁ = p or
            // i₂ = 1); the i₁ = p plane sums 4–5 bits and emits the second
            // carry (d̄₇ at i₁ = p).
            let boundary = Predicate::eq_const(i1, pi).or(&Predicate::eq_const(i2, 1));
            let interior = boundary.negate();
            let south = Predicate::eq_const(i1, pi);
            let east_only = Predicate::eq_const(i2, 1).and(&Predicate::ne_const(i1, pi));

            let mut interior_inputs = pp_inputs();
            interior_inputs.push(Access::new("z", AffineFn::shift_back(&d6)));
            // Eastern boundary (i₂ = 1, i₁ ≠ p): inject z(j̄−h̄₃) bit, still ≤ 3
            // meaningful inputs (the carry-in is zero at i₂ = 1).
            let mut east_inputs = pp_inputs();
            east_inputs.push(Access::new("z", AffineFn::shift_back(&d6)));
            east_inputs.push(Access::new("z", AffineFn::shift_back(&d3)));
            // Southern plane (i₁ = p): inject + drain + chained second carry.
            let mut south_inputs = pp_inputs();
            south_inputs.push(Access::new("z", AffineFn::shift_back(&d6)));
            south_inputs.push(Access::new("z", AffineFn::shift_back(&d3)));
            south_inputs.push(Access::new("c'", AffineFn::shift_back(&d7)));

            statements.push(Statement::guarded(
                Access::new("z", AffineFn::identity(nn)),
                interior_inputs.clone(),
                OpKind::SumBit,
                interior.clone(),
            ));
            statements.push(Statement::guarded(
                Access::new("c", AffineFn::identity(nn)),
                interior_inputs,
                OpKind::CarryBit,
                interior,
            ));
            statements.push(Statement::guarded(
                Access::new("z", AffineFn::identity(nn)),
                east_inputs.clone(),
                OpKind::WideAddOutput(0),
                east_only.clone(),
            ));
            statements.push(Statement::guarded(
                Access::new("c", AffineFn::identity(nn)),
                east_inputs,
                OpKind::WideAddOutput(1),
                east_only,
            ));
            statements.push(Statement::guarded(
                Access::new("z", AffineFn::identity(nn)),
                south_inputs.clone(),
                OpKind::WideAddOutput(0),
                south.clone(),
            ));
            statements.push(Statement::guarded(
                Access::new("c", AffineFn::identity(nn)),
                south_inputs.clone(),
                OpKind::WideAddOutput(1),
                south.clone(),
            ));
            statements.push(Statement::guarded(
                Access::new("c'", AffineFn::identity(nn)),
                south_inputs,
                OpKind::WideAddOutput(2),
                south,
            ));
        }
    }

    LoopNest::new(bounds, statements)
}

/// The expansion blow-up factor: the expanded program has `p²` times the
/// index points of the word-level one — the quantity that makes general
/// dependence analysis on the expanded form expensive.
pub fn expansion_factor(p: usize) -> u128 {
    (p as u128) * (p as u128)
}

/// Convenience: the compound index set without building the full nest.
pub fn expanded_index_set(word: &WordLevelAlgorithm, p: usize) -> BoxSet {
    word.bounds.product(&BoxSet::cube(2, 1, p as i64))
}

/// Builds the access-pair dependence *candidates* of the expanded nest as
/// (write-access, read-access, statement guards) matrices suitable for the
/// Diophantine baseline: returns, for each (writer statement, reader
/// statement, read access) triple over the same array, the system
/// `[A_w | −A_r]·[j̄_wᵀ, j̄_rᵀ]ᵀ = b̄_r − b̄_w`.
pub fn dependence_candidates(nest: &LoopNest) -> Vec<DependenceCandidate> {
    let mut out = Vec::new();
    for (wi, w) in nest.statements.iter().enumerate() {
        for (ri, r) in nest.statements.iter().enumerate() {
            for (ai, acc) in r.inputs.iter().enumerate() {
                if acc.array != w.target.array {
                    continue;
                }
                // A_w j_w + b_w = A_r j_r + b_r  ⇔  [A_w | −A_r] v = b_r − b_w.
                let aw = &w.target.func;
                let ar = &acc.func;
                let neg_ar = ar.matrix.map(|x| -x);
                let system = aw.matrix.hstack(&neg_ar);
                let rhs = &acc.func.offset - &w.target.func.offset;
                out.push(DependenceCandidate {
                    writer: wi,
                    reader: ri,
                    read_access: ai,
                    system,
                    rhs,
                });
            }
        }
    }
    out
}

/// One (writer, reader, access) pair with its dependence equation system.
#[derive(Debug, Clone)]
pub struct DependenceCandidate {
    /// Index of the writing statement in the nest.
    pub writer: usize,
    /// Index of the reading statement in the nest.
    pub reader: usize,
    /// Index of the read access within the reading statement's inputs.
    pub read_access: usize,
    /// The stacked system `[A_w | −A_r]` over `(j̄_w, j̄_r)`.
    pub system: IMat,
    /// Right-hand side `b̄_r − b̄_w`.
    pub rhs: IVec,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expanded_matmul_has_compound_dimension() {
        let nest = expand(&WordLevelAlgorithm::matmul(2), 3, Expansion::II);
        assert_eq!(nest.dim(), 5);
        assert_eq!(nest.bounds.cardinality(), 8 * 9);
        let arrays = nest.arrays();
        assert!(arrays.contains(&"x".to_string()));
        assert!(arrays.contains(&"c'".to_string()));
    }

    #[test]
    fn expansion_i_statement_regions_partition_the_set() {
        // Every point must execute exactly one z-writing statement.
        let nest = expand(&WordLevelAlgorithm::matmul(2), 2, Expansion::I);
        let set = &nest.bounds;
        for q in set.iter_points() {
            let z_writers = nest
                .statements
                .iter()
                .filter(|s| s.target.array == "z" && s.guard.eval(&q, set))
                .count();
            assert_eq!(z_writers, 1, "point {q}");
        }
    }

    #[test]
    fn expansion_ii_statement_regions_partition_the_set() {
        let nest = expand(&WordLevelAlgorithm::matmul(2), 3, Expansion::II);
        let set = &nest.bounds;
        for q in set.iter_points() {
            let z_writers = nest
                .statements
                .iter()
                .filter(|s| s.target.array == "z" && s.guard.eval(&q, set))
                .count();
            assert_eq!(z_writers, 1, "point {q}");
            let c_writers = nest
                .statements
                .iter()
                .filter(|s| s.target.array == "c" && s.guard.eval(&q, set))
                .count();
            assert_eq!(c_writers, 1, "point {q}");
        }
    }

    #[test]
    fn wide_adders_only_on_expected_regions() {
        let nest = expand(&WordLevelAlgorithm::matmul(2), 3, Expansion::II);
        let set = &nest.bounds;
        // Statements with a d̄₃ read (the z(j̄−h̄₃) injection) must be guarded
        // to the boundary q̄₂.
        for s in &nest.statements {
            let has_d3_read = s
                .inputs
                .iter()
                .any(|a| a.array == "z" && a.func.offset.as_slice() == [0, 0, -1, 0, 0]);
            if has_d3_read {
                for q in set.iter_points() {
                    if s.guard.eval(&q, set) {
                        assert!(q[3] == 3 || q[4] == 1, "injection outside q̄2 at {q}");
                    }
                }
            }
        }
    }

    #[test]
    fn candidates_cover_all_same_array_pairs() {
        let nest = expand(&WordLevelAlgorithm::matmul(2), 2, Expansion::I);
        let cands = dependence_candidates(&nest);
        // Every candidate's system has 2·dim unknown columns.
        for c in &cands {
            assert_eq!(c.system.cols(), 2 * nest.dim());
            assert_eq!(c.system.rows(), c.rhs.dim());
        }
        // There is at least one x–x, y–y, z–z and c–c pair.
        let arrays = |i: usize| nest.statements[i].target.array.clone();
        for name in ["x", "y", "z", "c"] {
            assert!(
                cands.iter().any(|c| arrays(c.writer) == name),
                "no candidate writes {name}"
            );
        }
    }

    #[test]
    fn expansion_factor_is_p_squared() {
        assert_eq!(expansion_factor(4), 16);
        let word = WordLevelAlgorithm::matmul(3);
        assert_eq!(
            expanded_index_set(&word, 4).cardinality(),
            word.bounds.cardinality() * expansion_factor(4)
        );
    }
}
