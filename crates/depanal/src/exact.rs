//! General (exact) dependence analysis — the expensive baseline.
//!
//! "Many methods have been proposed for deriving dependence structures of
//! algorithms with nested loops. These methods generally involve finding all
//! integer solutions of a set of linear Diophantine equations, followed by a
//! verification to see if the integer solutions are inside the index set…
//! In an exact analysis, the time complexity of these methods is exponential
//! with respect to the number of nested loops" (Section 1).
//!
//! Two independent implementations are provided:
//!
//! * [`enumerate_dependences`] — ground truth by brute force: walk every
//!   index point, record writers, match readers. `O(|J| · statements)`.
//! * [`diophantine_dependences`] — the classical method the paper refers to:
//!   for each access pair, solve the linear Diophantine system
//!   `A_w·j̄_w = A_r·j̄_r + (b̄_r − b̄_w)`, then enumerate the solution lattice
//!   inside `J × J` (Hermite-staircase bounded DFS). Exponential in the
//!   lattice rank — which for expanded bit-level code is large; this is the
//!   cost Theorem 3.1 eliminates.
//!
//! Both return a [`DependenceInstances`] map `d̄ → {points where an instance
//! `(j̄, d̄)` exists}`, the semantic object against which compositional
//! structures are validated.

use crate::expand::dependence_candidates;
use bitlevel_ir::{enumerate_lattice_in_box, AlgorithmTriplet, LoopNest};
use bitlevel_linalg::{solve_system, IVec};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// All exercised dependence instances, keyed by dependence vector: the map
/// `d̄ ↦ { j̄ : iteration j̄ depends on j̄ − d̄ }`.
pub type DependenceInstances = BTreeMap<IVec, BTreeSet<IVec>>;

/// Ground-truth dependence instances by exhaustive enumeration.
///
/// Exploits the single-assignment property (Section 2): each datum has at
/// most one writer, so a hash join from written data to reading iterations
/// suffices.
///
/// # Panics
/// Panics if the nest violates single assignment (two guarded statements
/// writing the same array element).
pub fn enumerate_dependences(nest: &LoopNest) -> DependenceInstances {
    let set = &nest.bounds;
    // (array, subscript) → writing point.
    let mut writers: HashMap<(String, IVec), IVec> = HashMap::new();
    for q in set.iter_points() {
        for s in &nest.statements {
            if !s.guard.eval(&q, set) {
                continue;
            }
            let key = (s.target.array.clone(), s.target.func.apply(&q));
            if let Some(prev) = writers.insert(key.clone(), q.clone()) {
                panic!(
                    "single-assignment violated: {}({}) written at {prev} and {q}",
                    key.0, key.1
                );
            }
        }
    }

    let mut out: DependenceInstances = BTreeMap::new();
    for q in set.iter_points() {
        for s in &nest.statements {
            if !s.guard.eval(&q, set) {
                continue;
            }
            for acc in &s.inputs {
                let key = (acc.array.clone(), acc.func.apply(&q));
                if let Some(w) = writers.get(&key) {
                    if *w != q {
                        out.entry(&q - w).or_default().insert(q.clone());
                    }
                }
            }
        }
    }
    out
}

/// The classical Diophantine-plus-verification method.
///
/// For every (writer statement, reader access) pair over the same array, the
/// dependence equation `A_w·j̄_w + b̄_w = A_r·j̄_r + b̄_r` is solved exactly over
/// `Z^{2n}` ([`bitlevel_linalg::solve_system`]); the solution lattice is then
/// enumerated inside `J × J` via a Hermite staircase (each lattice parameter
/// is bounded exactly by its pivot row once earlier parameters are fixed),
/// and each surviving pair is checked against both statement guards.
///
/// Produces exactly the instances of [`enumerate_dependences`] — but by the
/// expensive route the paper's contribution avoids.
pub fn diophantine_dependences(nest: &LoopNest) -> DependenceInstances {
    let set = &nest.bounds;
    let n = set.dim();
    // The product box J × J over (j̄_w, j̄_r).
    let double = set.product(set);
    let mut out: DependenceInstances = BTreeMap::new();

    for cand in dependence_candidates(nest) {
        let Some(sol) = solve_system(&cand.system, &cand.rhs) else {
            continue; // no integer solutions at all (GCD failure)
        };
        let writer = &nest.statements[cand.writer];
        let reader = &nest.statements[cand.reader];
        for v in enumerate_lattice_in_box(&sol.particular, &sol.lattice, &double) {
            let (jw, jr) = v.split_at(n);
            if jw == jr {
                continue; // same iteration: not a cross-iteration dependence
            }
            if !writer.guard.eval(&jw, set) || !reader.guard.eval(&jr, set) {
                continue;
            }
            out.entry(&jr - &jw).or_default().insert(jr);
        }
    }
    out
}

/// Computes the dependence instances implied by a (possibly conditional)
/// dependence structure: the semantics of an [`AlgorithmTriplet`] in the same
/// instance-map form the analysers produce. A vector `d̄` with validity `P`
/// contributes `{ j̄ ∈ J : P(j̄) ∧ j̄ − d̄ ∈ J }`.
pub fn instances_of_triplet(alg: &AlgorithmTriplet) -> DependenceInstances {
    let set = &alg.index_set;
    let mut out: DependenceInstances = BTreeMap::new();
    for d in alg.deps.iter() {
        for q in set.iter_points() {
            if d.active_at(&q, set) {
                out.entry(d.vector.clone()).or_default().insert(q);
            }
        }
    }
    // Drop vectors that are active nowhere.
    out.retain(|_, pts| !pts.is_empty());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_ir::{
        Access, AffineFn, BoxSet, Dependence, DependenceSet, OpKind, Predicate, Statement,
        WordLevelAlgorithm,
    };

    #[test]
    fn enumerate_matmul_word_level_matches_eq_2_4() {
        let nest = WordLevelAlgorithm::matmul(3).nest();
        let inst = enumerate_dependences(&nest);
        // Exactly the three unit vectors of (2.4).
        let vecs: Vec<IVec> = inst.keys().cloned().collect();
        assert_eq!(
            vecs,
            vec![
                IVec::from([0, 0, 1]),
                IVec::from([0, 1, 0]),
                IVec::from([1, 0, 0]),
            ]
        );
        // Each uniform vector is active wherever its source is inside: 3·3·2
        // points.
        for pts in inst.values() {
            assert_eq!(pts.len(), 18);
        }
    }

    #[test]
    fn diophantine_agrees_with_enumeration_on_word_level() {
        for alg in [
            WordLevelAlgorithm::matmul(3),
            WordLevelAlgorithm::convolution(4, 3),
            WordLevelAlgorithm::matvec(3, 4),
        ] {
            let nest = alg.nest();
            assert_eq!(
                enumerate_dependences(&nest),
                diophantine_dependences(&nest),
                "{}",
                alg.name
            );
        }
    }

    #[test]
    fn instances_of_triplet_matches_enumeration_for_word_level() {
        let alg = WordLevelAlgorithm::matmul(3);
        assert_eq!(
            instances_of_triplet(&alg.triplet()),
            enumerate_dependences(&alg.nest())
        );
    }

    #[test]
    fn guarded_statements_restrict_instances() {
        // A nest where z(j) = z(j-1) only executes at j = u: exactly one
        // instance.
        let nest = LoopNest::new(
            BoxSet::cube(1, 1, 5),
            vec![
                Statement::new(
                    Access::new("z", AffineFn::identity(1)),
                    vec![],
                    OpKind::Other("init".into()),
                ),
                Statement::guarded(
                    Access::new("w", AffineFn::identity(1)),
                    vec![Access::new("z", AffineFn::shift_back(&[1].into()))],
                    OpKind::Copy,
                    Predicate::eq_upper(0),
                ),
            ],
        );
        let inst = enumerate_dependences(&nest);
        assert_eq!(inst.len(), 1);
        let pts = &inst[&IVec::from([1])];
        assert_eq!(pts.len(), 1);
        assert!(pts.contains(&IVec::from([5])));
        assert_eq!(inst, diophantine_dependences(&nest));
    }

    #[test]
    fn anti_diagonal_access_dependences() {
        // Convolution's x stream: x(j1+j2) read — dependence along [1,-1].
        let nest = WordLevelAlgorithm::convolution(4, 3).nest();
        let inst = enumerate_dependences(&nest);
        assert!(inst.contains_key(&IVec::from([1, -1])));
    }

    #[test]
    fn triplet_with_inactive_conditional_vector_has_no_ghost_instances() {
        let alg = AlgorithmTriplet::new(
            BoxSet::cube(2, 1, 3),
            DependenceSet::new(vec![Dependence::conditional(
                [1, 0],
                "x",
                Predicate::eq_const(0, 99), // never true in this box
            )]),
            "",
        );
        assert!(instances_of_triplet(&alg).is_empty());
    }
}
