//! Classical approximate dependence *tests*: GCD and Banerjee [1].
//!
//! "The dependence structure of the matrix multiplication algorithm in (2.3)
//! can also be obtained by using Banerjee's technique [1]" (Section 2). These
//! tests decide — conservatively — whether a dependence *may* exist between a
//! write `A_w·j̄_w + b̄_w` and a read `A_r·j̄_r + b̄_r` over the iteration box.
//! Both are sound (never report "independent" when a dependence exists) but
//! not exact; the property tests check soundness against
//! [`crate::exact::enumerate_dependences`].

use bitlevel_ir::{AffineFn, BoxSet};
use bitlevel_linalg::gcd_all;

/// Verdict of an approximate dependence test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestVerdict {
    /// A dependence may exist (the test could not disprove it).
    MayDepend,
    /// No dependence can exist.
    Independent,
}

/// The GCD test on one access pair: for each subscript dimension `r`, the
/// dependence equation `Σ a_i·j_i − Σ a'_i·j'_i = b'_r − b_r` has integer
/// solutions only if `gcd(coefficients)` divides the constant.
pub fn gcd_test(write: &AffineFn, read: &AffineFn) -> TestVerdict {
    assert_eq!(
        write.output_dim(),
        read.output_dim(),
        "subscript arity mismatch"
    );
    for r in 0..write.output_dim() {
        let mut coeffs: Vec<i64> = write.matrix.row(r).to_vec();
        coeffs.extend(read.matrix.row(r).iter().map(|&x| -x));
        let g = gcd_all(&coeffs);
        let c = read.offset[r] - write.offset[r];
        let solvable = if g == 0 { c == 0 } else { c % g == 0 };
        if !solvable {
            return TestVerdict::Independent;
        }
    }
    TestVerdict::MayDepend
}

/// Banerjee's bounds test: for each subscript dimension, the linear form
/// `Σ a_i·j_i − Σ a'_i·j'_i` ranges (over the real relaxation of the box)
/// between easily computed extremes; a dependence requires the constant to
/// lie inside that interval.
pub fn banerjee_test(write: &AffineFn, read: &AffineFn, bounds: &BoxSet) -> TestVerdict {
    assert_eq!(
        write.output_dim(),
        read.output_dim(),
        "subscript arity mismatch"
    );
    let n = bounds.dim();
    assert_eq!(write.input_dim(), n, "access dimension mismatch");
    for r in 0..write.output_dim() {
        let c = read.offset[r] - write.offset[r];
        let mut min = 0i64;
        let mut max = 0i64;
        // Writer variables contribute +a_i·j_i, reader variables −a'_i·j'_i;
        // both range over the same box.
        for i in 0..n {
            let (lo, hi) = (bounds.lower()[i], bounds.upper()[i]);
            let a = write.matrix[(r, i)];
            if a >= 0 {
                min += a * lo;
                max += a * hi;
            } else {
                min += a * hi;
                max += a * lo;
            }
            let ap = -read.matrix[(r, i)];
            if ap >= 0 {
                min += ap * lo;
                max += ap * hi;
            } else {
                min += ap * hi;
                max += ap * lo;
            }
        }
        if c < min || c > max {
            return TestVerdict::Independent;
        }
    }
    TestVerdict::MayDepend
}

/// Combined classical screen: independent if *either* test disproves the
/// dependence — the usual compiler pipeline (GCD first, Banerjee second).
pub fn classical_screen(write: &AffineFn, read: &AffineFn, bounds: &BoxSet) -> TestVerdict {
    if gcd_test(write, read) == TestVerdict::Independent {
        return TestVerdict::Independent;
    }
    banerjee_test(write, read, bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::enumerate_dependences;
    use bitlevel_ir::{Access, LoopNest, OpKind, Statement};
    use bitlevel_linalg::{IMat, IVec};
    use proptest::prelude::*;

    #[test]
    fn gcd_test_disproves_parity_conflicts() {
        // write x(2j), read x(2j+1): gcd(2,2) = 2 does not divide 1.
        let w = AffineFn::new(IMat::from_rows(&[&[2]]), IVec::from([0]));
        let r = AffineFn::new(IMat::from_rows(&[&[2]]), IVec::from([1]));
        assert_eq!(gcd_test(&w, &r), TestVerdict::Independent);
        // write x(2j), read x(2j+4): may depend.
        let r2 = AffineFn::new(IMat::from_rows(&[&[2]]), IVec::from([4]));
        assert_eq!(gcd_test(&w, &r2), TestVerdict::MayDepend);
    }

    #[test]
    fn banerjee_disproves_out_of_range_offsets() {
        // write x(j), read x(j+100) over j ∈ [1,10]: distance 100 can never
        // be bridged (LHS j_w − j_r ∈ [-9, 9]).
        let w = AffineFn::identity(1);
        let r = AffineFn::new(IMat::identity(1), IVec::from([100]));
        let b = BoxSet::cube(1, 1, 10);
        assert_eq!(banerjee_test(&w, &r, &b), TestVerdict::Independent);
        assert_eq!(gcd_test(&w, &r), TestVerdict::MayDepend); // GCD can't see it
        let r2 = AffineFn::new(IMat::identity(1), IVec::from([5]));
        assert_eq!(banerjee_test(&w, &r2, &b), TestVerdict::MayDepend);
    }

    #[test]
    fn matmul_accesses_may_depend() {
        // The paper's observation: Banerjee's technique finds the (2.3)
        // dependences. All three pipelined accesses must pass the screen.
        let b = BoxSet::cube(3, 1, 4);
        let id = AffineFn::identity(3);
        for d in [[0, 1, 0], [1, 0, 0], [0, 0, 1]] {
            let read = AffineFn::shift_back(&IVec::from(d));
            assert_eq!(classical_screen(&id, &read, &b), TestVerdict::MayDepend);
        }
    }

    proptest! {
        /// Soundness: whenever the exact analysis finds an instance for an
        /// access pair, neither test may claim independence.
        #[test]
        fn prop_tests_are_sound(
            rm in proptest::collection::vec(-2i64..3, 4),
            rb in proptest::collection::vec(-3i64..4, 2),
        ) {
            let bounds = BoxSet::cube(2, 1, 4);
            // Writer uses the identity subscript (injective, so the nest is
            // single-assignment by construction); the read access is random.
            let write = AffineFn::identity(2);
            let read = AffineFn::new(IMat::from_flat(2, 2, rm), IVec(rb));
            let nest = LoopNest::new(
                bounds.clone(),
                vec![
                    Statement::new(Access::new("t", write.clone()), vec![], OpKind::Other("w".into())),
                    Statement::new(
                        Access::new("u", AffineFn::identity(2)),
                        vec![Access::new("t", read.clone())],
                        OpKind::Copy,
                    ),
                ],
            );
            let exact = enumerate_dependences(&nest);
            if !exact.is_empty() {
                prop_assert_eq!(gcd_test(&write, &read), TestVerdict::MayDepend);
                prop_assert_eq!(banerjee_test(&write, &read, &bounds), TestVerdict::MayDepend);
            }
        }
    }
}
