//! Linear Diophantine systems `A·x̄ = b̄` over the integers.
//!
//! General dependence analysis ("finding all integer solutions of a set of
//! linear Diophantine equations, followed by a verification to see if the
//! integer solutions are inside the index set" — Section 1 of the paper)
//! reduces to exactly this problem. The solver returns the full solution set
//! in parametric form (a particular solution plus a lattice of homogeneous
//! solutions), which `bitlevel-depanal` then intersects with the index set.

use crate::mat::IMat;
use crate::smith::smith_normal_form;
use crate::vec::IVec;

/// The complete integer solution set of `A·x̄ = b̄`:
/// `x̄ = particular + Σ tᵢ · lattice[i]`, `tᵢ ∈ Z`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiophantineSolution {
    /// One integer solution.
    pub particular: IVec,
    /// Basis of the homogeneous solution lattice (may be empty — unique
    /// solution).
    pub lattice: Vec<IVec>,
}

impl DiophantineSolution {
    /// Evaluates the parametric solution at integer parameters `t`.
    ///
    /// # Panics
    /// Panics if `t.len() != self.lattice.len()`.
    pub fn at(&self, t: &[i64]) -> IVec {
        assert_eq!(t.len(), self.lattice.len(), "parameter count mismatch");
        let mut x = self.particular.clone();
        for (ti, v) in t.iter().zip(&self.lattice) {
            x = &x + &v.scaled(*ti);
        }
        x
    }

    /// True if the system has exactly one integer solution.
    pub fn is_unique(&self) -> bool {
        self.lattice.is_empty()
    }
}

/// Solves `a·x̄ = b̄` over `Z`. Returns `None` when no integer solution exists.
///
/// Method: Smith normal form `U·A·V = S` turns the system into
/// `S·ȳ = U·b̄` with `x̄ = V·ȳ`; the diagonal system is solvable iff each
/// `sᵢ` divides `(U·b̄)ᵢ` and the trailing entries of `U·b̄` are zero.
///
/// # Panics
/// Panics if `b.dim() != a.rows()`.
///
/// # Examples
///
/// ```
/// use bitlevel_linalg::{solve_system, IMat, IVec};
///
/// // 3x + 6y = 9: solvable, one-parameter solution family.
/// let a = IMat::from_rows(&[&[3, 6]]);
/// let sol = solve_system(&a, &IVec::from([9])).unwrap();
/// assert_eq!(a.matvec(&sol.at(&[5])), IVec::from([9]));
///
/// // 2x + 4y = 3: gcd(2,4) = 2 does not divide 3.
/// assert!(solve_system(&IMat::from_rows(&[&[2, 4]]), &IVec::from([3])).is_none());
/// ```
pub fn solve_system(a: &IMat, b: &IVec) -> Option<DiophantineSolution> {
    assert_eq!(b.dim(), a.rows(), "rhs dimension mismatch");
    let n = a.cols();
    let sf = smith_normal_form(a);
    let c = sf.u.matvec(b);

    let mut y = IVec::zeros(n);
    for i in 0..sf.rank {
        let s = sf.s[(i, i)];
        if c[i] % s != 0 {
            return None;
        }
        y[i] = c[i] / s;
    }
    for i in sf.rank..a.rows() {
        if c[i] != 0 {
            return None;
        }
    }

    let particular = sf.v.matvec(&y);
    let lattice: Vec<IVec> = (sf.rank..n).map(|j| sf.v.col(j)).collect();
    Some(DiophantineSolution {
        particular,
        lattice,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solvable_single_equation() {
        // 3x + 6y = 9 has solutions; lattice dimension 1.
        let a = IMat::from_rows(&[&[3, 6]]);
        let sol = solve_system(&a, &IVec::from([9])).expect("solvable");
        assert_eq!(a.matvec(&sol.particular), IVec::from([9]));
        assert_eq!(sol.lattice.len(), 1);
        for t in -3..=3 {
            assert_eq!(a.matvec(&sol.at(&[t])), IVec::from([9]));
        }
    }

    #[test]
    fn unsolvable_by_gcd() {
        // 2x + 4y = 3: gcd(2,4)=2 does not divide 3.
        let a = IMat::from_rows(&[&[2, 4]]);
        assert!(solve_system(&a, &IVec::from([3])).is_none());
    }

    #[test]
    fn unsolvable_inconsistent_rows() {
        // x + y = 1 and 2x + 2y = 3 conflict.
        let a = IMat::from_rows(&[&[1, 1], &[2, 2]]);
        assert!(solve_system(&a, &IVec::from([1, 3])).is_none());
        // …but 2x + 2y = 2 is consistent.
        let sol = solve_system(&a, &IVec::from([1, 2])).expect("solvable");
        assert_eq!(a.matvec(&sol.particular), IVec::from([1, 2]));
    }

    #[test]
    fn unique_solution() {
        let a = IMat::from_rows(&[&[1, 0], &[0, 1]]);
        let sol = solve_system(&a, &IVec::from([5, -7])).expect("solvable");
        assert!(sol.is_unique());
        assert_eq!(sol.particular, IVec::from([5, -7]));
    }

    #[test]
    fn dependence_equation_example() {
        // Accesses x(j1, j3) at write j̄' and read j̄: the "same datum" condition
        // j1 - j1' = 0, j3 - j3' = 0 over the 6 unknowns (j̄, j̄') yields a
        // 4-dimensional solution lattice (j2 and j2' free, plus the diagonal).
        // Build A over variables (j1, j2, j3, j1', j2', j3').
        let a = IMat::from_rows(&[&[1, 0, 0, -1, 0, 0], &[0, 0, 1, 0, 0, -1]]);
        let sol = solve_system(&a, &IVec::zeros(2)).expect("homogeneous always solvable");
        assert_eq!(sol.lattice.len(), 4);
        assert!(sol.particular.is_zero() || a.matvec(&sol.particular).is_zero());
    }

    proptest! {
        #[test]
        fn prop_constructed_systems_solve_back(
            rows in 1usize..4, cols in 1usize..4,
            seed in proptest::collection::vec(-6i64..6, 16),
            xs in proptest::collection::vec(-5i64..5, 4),
        ) {
            let data: Vec<i64> = seed.into_iter().take(rows * cols).collect();
            prop_assume!(data.len() == rows * cols);
            let a = IMat::from_flat(rows, cols, data);
            // Construct b so the system is solvable by design.
            let x = IVec(xs.into_iter().take(cols).collect());
            prop_assume!(x.dim() == cols);
            let b = a.matvec(&x);
            let sol = solve_system(&a, &b).expect("constructed system must be solvable");
            prop_assert_eq!(a.matvec(&sol.particular), b.clone());
            // All lattice directions stay in the kernel.
            for v in &sol.lattice {
                prop_assert!(a.matvec(v).is_zero());
            }
            // A couple of parametric points also solve the system.
            let t: Vec<i64> = (0..sol.lattice.len()).map(|k| (k as i64) - 1).collect();
            prop_assert_eq!(a.matvec(&sol.at(&t)), b);
        }

        #[test]
        fn prop_none_means_truly_unsolvable_for_single_equation(
            coeffs in proptest::collection::vec(-6i64..6, 3),
            b in -20i64..20,
        ) {
            let a = IMat::from_flat(1, 3, coeffs.clone());
            let g = crate::gcd::gcd_all(&coeffs);
            let sol = solve_system(&a, &IVec::from([b]));
            let solvable = if g == 0 { b == 0 } else { b % g == 0 };
            prop_assert_eq!(sol.is_some(), solvable);
        }
    }
}
