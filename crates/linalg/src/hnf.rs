//! Column-style Hermite normal form.
//!
//! For an integer matrix `A` (m×n) we compute a unimodular `U` (n×n) with
//! `A·U = H`, where `H` is in **column** Hermite form: the first `r = rank(A)`
//! columns are the nonzero columns, each pivot (first nonzero entry scanning
//! rows top-down) is positive and strictly below the previous column's pivot
//! row, and entries to the *left* of a pivot in its row are reduced modulo the
//! pivot. The last `n − r` columns of `H` are zero, and the corresponding
//! columns of `U` form a basis of the integer nullspace of `A` — which is how
//! [`crate::nullspace::integer_nullspace`] uses this module.

use crate::mat::IMat;

/// Result of the column Hermite reduction: `a * u = h`, `u` unimodular.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HermiteForm {
    /// The Hermite form `H` (same shape as the input).
    pub h: IMat,
    /// The unimodular column-operations matrix `U` (n×n), `det U = ±1`.
    pub u: IMat,
    /// Rank of the input (= number of nonzero columns of `H`).
    pub rank: usize,
}

/// Computes the column Hermite form of `a`: returns `H`, `U` with `aU = H`.
pub fn column_hermite_form(a: &IMat) -> HermiteForm {
    let (m, n) = (a.rows(), a.cols());
    let mut h = a.clone();
    let mut u = IMat::identity(n);

    // Column operations only: swap columns, negate a column, add an integer
    // multiple of one column to another. All preserve the column lattice and
    // keep U unimodular.
    let mut pivot_col = 0usize;
    for row in 0..m {
        if pivot_col >= n {
            break;
        }
        // Euclidean reduction across columns pivot_col..n in this row until at
        // most one nonzero entry remains (at pivot_col).
        loop {
            // Find column with the smallest nonzero |entry| in this row.
            let mut best: Option<(usize, i64)> = None;
            for j in pivot_col..n {
                let v = h[(row, j)];
                if v != 0 && best.is_none_or(|(_, bv)| v.abs() < bv.abs()) {
                    best = Some((j, v));
                }
            }
            let Some((jmin, _)) = best else {
                break; // row is all zeros from pivot_col on; no pivot here
            };
            // Move it into the pivot column.
            if jmin != pivot_col {
                swap_cols(&mut h, pivot_col, jmin);
                swap_cols(&mut u, pivot_col, jmin);
            }
            let pv = h[(row, pivot_col)];
            let mut done = true;
            for j in pivot_col + 1..n {
                let v = h[(row, j)];
                if v != 0 {
                    let q = v.div_euclid(pv);
                    add_col_multiple(&mut h, j, pivot_col, -q);
                    add_col_multiple(&mut u, j, pivot_col, -q);
                    if h[(row, j)] != 0 {
                        done = false;
                    }
                }
            }
            if done {
                break;
            }
        }
        if h[(row, pivot_col)] == 0 {
            continue; // no pivot in this row
        }
        // Make pivot positive.
        if h[(row, pivot_col)] < 0 {
            negate_col(&mut h, pivot_col);
            negate_col(&mut u, pivot_col);
        }
        // Reduce entries to the left of the pivot in this row modulo the pivot
        // (canonical Hermite condition).
        let pv = h[(row, pivot_col)];
        for j in 0..pivot_col {
            let v = h[(row, j)];
            let q = v.div_euclid(pv);
            if q != 0 {
                add_col_multiple(&mut h, j, pivot_col, -q);
                add_col_multiple(&mut u, j, pivot_col, -q);
            }
        }
        pivot_col += 1;
    }

    HermiteForm {
        h,
        u,
        rank: pivot_col,
    }
}

fn swap_cols(m: &mut IMat, a: usize, b: usize) {
    for i in 0..m.rows() {
        let t = m[(i, a)];
        m[(i, a)] = m[(i, b)];
        m[(i, b)] = t;
    }
}

fn negate_col(m: &mut IMat, c: usize) {
    for i in 0..m.rows() {
        m[(i, c)] = -m[(i, c)];
    }
}

/// `col_dst += k * col_src`.
fn add_col_multiple(m: &mut IMat, dst: usize, src: usize, k: i64) {
    if k == 0 {
        return;
    }
    for i in 0..m.rows() {
        let add = m[(i, src)].checked_mul(k).expect("hnf overflow");
        m[(i, dst)] = m[(i, dst)].checked_add(add).expect("hnf overflow");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::rank;
    use proptest::prelude::*;

    fn check_invariants(a: &IMat) {
        let hf = column_hermite_form(a);
        // A·U = H
        assert_eq!(a.matmul(&hf.u), hf.h, "aU != h for a =\n{a}");
        // U unimodular
        assert_eq!(hf.u.det().abs(), 1, "U not unimodular for a =\n{a}");
        // rank agrees with Bareiss
        assert_eq!(hf.rank, rank(a));
        // Trailing columns of H are zero
        for j in hf.rank..hf.h.cols() {
            assert!(hf.h.col(j).is_zero(), "column {j} of H not zero:\n{}", hf.h);
        }
        // Pivot staircase: pivot rows strictly increasing, pivots positive.
        let mut last_pivot_row: Option<usize> = None;
        for j in 0..hf.rank {
            let col = hf.h.col(j);
            let pr = (0..col.dim())
                .find(|&i| col[i] != 0)
                .expect("nonzero column");
            assert!(col[pr] > 0, "pivot not positive");
            if let Some(lp) = last_pivot_row {
                assert!(pr > lp, "pivot rows not strictly increasing");
            }
            last_pivot_row = Some(pr);
        }
    }

    #[test]
    fn hermite_of_identity() {
        let hf = column_hermite_form(&IMat::identity(3));
        assert_eq!(hf.h, IMat::identity(3));
        assert_eq!(hf.rank, 3);
    }

    #[test]
    fn hermite_of_zero() {
        let hf = column_hermite_form(&IMat::zeros(2, 3));
        assert_eq!(hf.rank, 0);
        assert_eq!(hf.h, IMat::zeros(2, 3));
        assert_eq!(hf.u.det().abs(), 1);
    }

    #[test]
    fn hermite_small_examples() {
        check_invariants(&IMat::from_rows(&[&[2, 4], &[1, 3]]));
        check_invariants(&IMat::from_rows(&[&[4, 6, 2], &[2, 2, 2]]));
        check_invariants(&IMat::from_rows(&[&[0, 0], &[0, 5]]));
        check_invariants(&IMat::from_rows(&[&[3], &[6], &[9]]));
        // The paper's T of eq. (4.2) with p = 3 (3x5, full row rank).
        check_invariants(&IMat::from_rows(&[
            &[3, 0, 0, 1, 0],
            &[0, 3, 0, 0, 1],
            &[1, 1, 1, 2, 1],
        ]));
    }

    #[test]
    fn nullspace_columns_of_u_kill_a() {
        let a = IMat::from_rows(&[&[1, 2, 3], &[2, 4, 6]]); // rank 1
        let hf = column_hermite_form(&a);
        assert_eq!(hf.rank, 1);
        for j in hf.rank..3 {
            let v = hf.u.col(j);
            assert!(a.matvec(&v).is_zero());
        }
    }

    proptest! {
        #[test]
        fn prop_hermite_invariants(rows in 1usize..4, cols in 1usize..5,
                                   seed in proptest::collection::vec(-9i64..9, 20)) {
            let data: Vec<i64> = seed.into_iter().take(rows * cols).collect();
            prop_assume!(data.len() == rows * cols);
            check_invariants(&IMat::from_flat(rows, cols, data));
        }
    }
}
