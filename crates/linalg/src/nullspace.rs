//! Integer nullspace bases.
//!
//! Condition 3 of Definition 4.1 forbids computational conflicts: distinct
//! index points `j̄₁ ≠ j̄₂ ∈ J` must satisfy `Tj̄₁ ≠ Tj̄₂`. Equivalently, no
//! nonzero vector of the integer nullspace of `T` may equal a difference of
//! two points of `J`. The conflict checker in `bitlevel-mapping` enumerates
//! nullspace lattice points inside the difference box of `J`; this module
//! supplies the lattice basis.

use crate::hnf::column_hermite_form;
use crate::mat::IMat;
use crate::vec::IVec;

/// A basis of the integer nullspace (kernel lattice) of `a`.
///
/// Returns `n − rank(a)` linearly independent integer vectors spanning
/// `{x̄ ∈ Zⁿ : a·x̄ = 0̄}` as a lattice (every integer kernel vector is an
/// integer combination of the basis, because the basis comes from a
/// unimodular column transform).
pub fn integer_nullspace(a: &IMat) -> Vec<IVec> {
    let hf = column_hermite_form(a);
    (hf.rank..a.cols()).map(|j| hf.u.col(j)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nullspace_of_full_column_rank_is_empty() {
        let a = IMat::from_rows(&[&[1, 0], &[0, 1], &[1, 1]]);
        assert!(integer_nullspace(&a).is_empty());
    }

    #[test]
    fn nullspace_of_zero_matrix_is_standard_lattice() {
        let a = IMat::zeros(2, 3);
        let basis = integer_nullspace(&a);
        assert_eq!(basis.len(), 3);
        // Basis must span Z^3: the matrix of basis vectors is unimodular.
        let b = IMat::from_columns(&basis);
        assert_eq!(b.det().abs(), 1);
    }

    #[test]
    fn nullspace_vectors_annihilate() {
        let a = IMat::from_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        let basis = integer_nullspace(&a);
        assert_eq!(basis.len(), 1);
        assert!(a.matvec(&basis[0]).is_zero());
        // Known kernel direction for this matrix is ±[1, -2, 1].
        let v = &basis[0];
        let g = crate::gcd::gcd_all(v.as_slice());
        assert_eq!(g, 1, "kernel basis vector should be primitive: {v}");
        assert!(
            v == &IVec::from([1, -2, 1]) || v == &IVec::from([-1, 2, -1]),
            "unexpected kernel vector {v}"
        );
    }

    #[test]
    fn nullspace_of_paper_mapping_matrix() {
        // T of eq. (4.2), p=3: 3x5 with rank 3 -> 2-dimensional kernel.
        let t = IMat::from_rows(&[&[3, 0, 0, 1, 0], &[0, 3, 0, 0, 1], &[1, 1, 1, 2, 1]]);
        let basis = integer_nullspace(&t);
        assert_eq!(basis.len(), 2);
        for v in &basis {
            assert!(t.matvec(v).is_zero());
            assert!(!v.is_zero());
        }
    }

    proptest! {
        #[test]
        fn prop_nullspace_annihilates_and_has_right_dimension(
            rows in 1usize..4, cols in 1usize..5,
            seed in proptest::collection::vec(-9i64..9, 20),
        ) {
            let data: Vec<i64> = seed.into_iter().take(rows * cols).collect();
            prop_assume!(data.len() == rows * cols);
            let a = IMat::from_flat(rows, cols, data);
            let basis = integer_nullspace(&a);
            prop_assert_eq!(basis.len(), cols - crate::rank::rank(&a));
            for v in &basis {
                prop_assert!(a.matvec(v).is_zero());
                prop_assert!(!v.is_zero());
            }
            // Linear independence: rank of basis matrix equals its column count.
            if !basis.is_empty() {
                let b = IMat::from_columns(&basis);
                prop_assert_eq!(crate::rank::rank(&b), basis.len());
            }
        }
    }
}
