//! Greatest common divisors and the extended Euclidean algorithm.
//!
//! Used for condition 5 of Definition 4.1 ("the entries of `T` are relatively
//! prime"), for the GCD dependence test, and as the workhorse inside the
//! Hermite/Smith normal-form reductions.

/// `gcd(a, b) ≥ 0`, with `gcd(0, 0) = 0`.
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a as i64
}

/// Least common multiple; `lcm(0, x) = 0`.
///
/// # Panics
/// Panics on overflow.
pub fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)).checked_mul(b).expect("lcm overflow").abs()
}

/// GCD of a whole slice; `gcd_all(&[]) = 0`.
pub fn gcd_all(xs: &[i64]) -> i64 {
    xs.iter().fold(0, |g, &x| gcd(g, x))
}

/// Extended Euclid: returns `(g, x, y)` with `g = gcd(a,b) ≥ 0` and
/// `a·x + b·y = g`.
pub fn extended_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    // Invariants: old_r = a*old_s + b*old_t, r = a*s + b*t.
    let (mut old_r, mut r) = (a as i128, b as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    let (mut old_t, mut t) = (0i128, 1i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
        (old_t, t) = (t, old_t - q * t);
    }
    if old_r < 0 {
        old_r = -old_r;
        old_s = -old_s;
        old_t = -old_t;
    }
    (old_r as i64, old_s as i64, old_t as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(12, -18), 6);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(1, i64::MIN + 1), 1);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 5), 0);
        assert_eq!(lcm(-4, 6), 12);
    }

    #[test]
    fn gcd_all_basic() {
        assert_eq!(gcd_all(&[6, 10, 15]), 1);
        assert_eq!(gcd_all(&[4, 8, 12]), 4);
        assert_eq!(gcd_all(&[]), 0);
        assert_eq!(gcd_all(&[0, 0]), 0);
        // Condition 5 of Definition 4.1 on the mapping matrix T of eq. (4.2):
        // entries {3(p), 0, 1, 2} for p=3 are relatively prime.
        assert_eq!(gcd_all(&[3, 0, 0, 1, 0, 0, 3, 0, 0, 1, 1, 1, 1, 2, 1]), 1);
    }

    #[test]
    fn extended_gcd_bezout() {
        let (g, x, y) = extended_gcd(240, 46);
        assert_eq!(g, 2);
        assert_eq!(240 * x + 46 * y, 2);
        let (g, x, y) = extended_gcd(-5, 3);
        assert_eq!(g, 1);
        assert_eq!(-5 * x + 3 * y, 1);
        let (g, _, _) = extended_gcd(0, 0);
        assert_eq!(g, 0);
    }

    proptest! {
        #[test]
        fn prop_gcd_divides(a in -10_000i64..10_000, b in -10_000i64..10_000) {
            let g = gcd(a, b);
            if g != 0 {
                prop_assert_eq!(a % g, 0);
                prop_assert_eq!(b % g, 0);
            } else {
                prop_assert_eq!(a, 0);
                prop_assert_eq!(b, 0);
            }
        }

        #[test]
        fn prop_extended_gcd_is_bezout(a in -10_000i64..10_000, b in -10_000i64..10_000) {
            let (g, x, y) = extended_gcd(a, b);
            prop_assert_eq!(g, gcd(a, b));
            prop_assert_eq!(a as i128 * x as i128 + b as i128 * y as i128, g as i128);
        }

        #[test]
        fn prop_lcm_gcd_product(a in 1i64..10_000, b in 1i64..10_000) {
            prop_assert_eq!(lcm(a, b) as i128 * gcd(a, b) as i128, (a as i128) * (b as i128));
        }
    }
}
