//! Smith normal form with transform witnesses.
//!
//! For an integer matrix `A` (m×n) we compute unimodular `U` (m×m) and `V`
//! (n×n) with `U·A·V = S`, where `S` is diagonal with nonnegative invariant
//! factors `s₁ | s₂ | … | s_r` followed by zeros. The Smith form is the
//! backbone of the linear Diophantine solver ([`crate::diophantine`]): the
//! system `A·x̄ = b̄` becomes the trivially-solvable `S·ȳ = U·b̄`, `x̄ = V·ȳ`.

use crate::mat::IMat;

/// Result of the Smith decomposition: `u * a * v = s`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmithForm {
    /// Diagonal Smith form `S` (same shape as input).
    pub s: IMat,
    /// Left unimodular transform `U` (m×m).
    pub u: IMat,
    /// Right unimodular transform `V` (n×n).
    pub v: IMat,
    /// Number of nonzero invariant factors (= rank of the input).
    pub rank: usize,
}

impl SmithForm {
    /// The invariant factors `s₁, …, s_r`.
    pub fn invariant_factors(&self) -> Vec<i64> {
        (0..self.rank).map(|i| self.s[(i, i)]).collect()
    }
}

/// Computes the Smith normal form of `a`.
pub fn smith_normal_form(a: &IMat) -> SmithForm {
    let (m, n) = (a.rows(), a.cols());
    let mut s = a.clone();
    let mut u = IMat::identity(m);
    let mut v = IMat::identity(n);

    let k = m.min(n);
    let mut t = 0usize; // current diagonal position being cleared
    while t < k {
        // Find the entry with smallest nonzero magnitude in the trailing
        // submatrix s[t.., t..]; move it to (t, t).
        let mut best: Option<(usize, usize, i64)> = None;
        for i in t..m {
            for j in t..n {
                let val = s[(i, j)];
                if val != 0 && best.is_none_or(|(_, _, bv)| val.abs() < bv.abs()) {
                    best = Some((i, j, val));
                }
            }
        }
        let Some((bi, bj, _)) = best else {
            break; // trailing submatrix is zero
        };
        if bi != t {
            swap_rows(&mut s, t, bi);
            swap_rows(&mut u, t, bi);
        }
        if bj != t {
            swap_cols(&mut s, t, bj);
            swap_cols(&mut v, t, bj);
        }

        // Reduce row t and column t with the pivot until both are clear.
        let mut clean = true;
        let pv = s[(t, t)];
        for i in t + 1..m {
            let q = s[(i, t)].div_euclid(pv);
            if q != 0 {
                add_row_multiple(&mut s, i, t, -q);
                add_row_multiple(&mut u, i, t, -q);
            }
            if s[(i, t)] != 0 {
                clean = false;
            }
        }
        for j in t + 1..n {
            let q = s[(t, j)].div_euclid(pv);
            if q != 0 {
                add_col_multiple(&mut s, j, t, -q);
                add_col_multiple(&mut v, j, t, -q);
            }
            if s[(t, j)] != 0 {
                clean = false;
            }
        }
        if !clean {
            continue; // smaller remainders exist; repick the pivot
        }

        // Pivot now alone in its row/column. Enforce the divisibility chain:
        // s[t][t] must divide every entry of the trailing submatrix.
        let pv = s[(t, t)];
        let mut offender: Option<(usize, usize)> = None;
        'scan: for i in t + 1..m {
            for j in t + 1..n {
                if s[(i, j)] % pv != 0 {
                    offender = Some((i, j));
                    break 'scan;
                }
            }
        }
        if let Some((i, _)) = offender {
            // Fold row i into row t to expose a smaller pivot, then retry.
            add_row_multiple(&mut s, t, i, 1);
            add_row_multiple(&mut u, t, i, 1);
            continue;
        }
        if s[(t, t)] < 0 {
            negate_row(&mut s, t);
            negate_row(&mut u, t);
        }
        t += 1;
    }

    SmithForm { rank: t, s, u, v }
}

fn swap_rows(m: &mut IMat, a: usize, b: usize) {
    for j in 0..m.cols() {
        let tmp = m[(a, j)];
        m[(a, j)] = m[(b, j)];
        m[(b, j)] = tmp;
    }
}

fn swap_cols(m: &mut IMat, a: usize, b: usize) {
    for i in 0..m.rows() {
        let tmp = m[(i, a)];
        m[(i, a)] = m[(i, b)];
        m[(i, b)] = tmp;
    }
}

fn negate_row(m: &mut IMat, r: usize) {
    for j in 0..m.cols() {
        m[(r, j)] = -m[(r, j)];
    }
}

/// `row_dst += k * row_src`.
fn add_row_multiple(m: &mut IMat, dst: usize, src: usize, k: i64) {
    if k == 0 {
        return;
    }
    for j in 0..m.cols() {
        let add = m[(src, j)].checked_mul(k).expect("smith overflow");
        m[(dst, j)] = m[(dst, j)].checked_add(add).expect("smith overflow");
    }
}

/// `col_dst += k * col_src`.
fn add_col_multiple(m: &mut IMat, dst: usize, src: usize, k: i64) {
    if k == 0 {
        return;
    }
    for i in 0..m.rows() {
        let add = m[(i, src)].checked_mul(k).expect("smith overflow");
        m[(i, dst)] = m[(i, dst)].checked_add(add).expect("smith overflow");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::rank;
    use proptest::prelude::*;

    fn check_invariants(a: &IMat) {
        let sf = smith_normal_form(a);
        // U·A·V = S
        assert_eq!(sf.u.matmul(a).matmul(&sf.v), sf.s, "UAV != S for\n{a}");
        // Unimodularity
        assert_eq!(sf.u.det().abs(), 1);
        assert_eq!(sf.v.det().abs(), 1);
        // Rank agreement
        assert_eq!(sf.rank, rank(a));
        // Diagonal with nonnegative divisibility chain
        for i in 0..sf.s.rows() {
            for j in 0..sf.s.cols() {
                if i != j {
                    assert_eq!(sf.s[(i, j)], 0, "off-diagonal nonzero:\n{}", sf.s);
                }
            }
        }
        let facts = sf.invariant_factors();
        for w in facts.windows(2) {
            assert!(
                w[0] > 0 && w[1] % w[0] == 0,
                "divisibility chain broken: {facts:?}"
            );
        }
        for i in sf.rank..sf.s.rows().min(sf.s.cols()) {
            assert_eq!(sf.s[(i, i)], 0);
        }
    }

    #[test]
    fn smith_of_identity_and_zero() {
        check_invariants(&IMat::identity(3));
        check_invariants(&IMat::zeros(2, 4));
    }

    #[test]
    fn smith_known_example() {
        // Classic example: [[2,4,4],[-6,6,12],[10,4,16]] has factors 2, 2, 156... keep a
        // simpler known one: [[2,0],[0,3]] -> factors 1, 6 after chain repair.
        let a = IMat::from_rows(&[&[2, 0], &[0, 3]]);
        let sf = smith_normal_form(&a);
        assert_eq!(sf.invariant_factors(), vec![1, 6]);
        check_invariants(&a);
    }

    #[test]
    fn smith_rectangular_and_rank_deficient() {
        check_invariants(&IMat::from_rows(&[&[1, 2, 3], &[2, 4, 6]]));
        check_invariants(&IMat::from_rows(&[&[0, 0], &[0, 0], &[7, 0]]));
        check_invariants(&IMat::from_rows(&[&[6, 10], &[10, 15], &[15, 6]]));
        // Paper's D_as = [[1,0,1],[0,1,-1]] (eq. 3.4).
        check_invariants(&IMat::from_rows(&[&[1, 0, 1], &[0, 1, -1]]));
    }

    #[test]
    fn divisibility_chain_requires_fold_step() {
        // diag(2,3): without the offender-folding step the chain 2|3 fails.
        let a = IMat::from_rows(&[&[2, 0], &[0, 3]]);
        let sf = smith_normal_form(&a);
        assert_eq!(sf.invariant_factors(), vec![1, 6]);
    }

    proptest! {
        #[test]
        fn prop_smith_invariants(rows in 1usize..4, cols in 1usize..4,
                                 seed in proptest::collection::vec(-9i64..9, 16)) {
            let data: Vec<i64> = seed.into_iter().take(rows * cols).collect();
            prop_assume!(data.len() == rows * cols);
            check_invariants(&IMat::from_flat(rows, cols, data));
        }
    }
}
