//! Exact integer rank via fraction-free (Bareiss) Gaussian elimination.
//!
//! Condition 4 of Definition 4.1 requires `rank(T) = k` so that an
//! `n`-dimensional algorithm really maps onto a `(k-1)`-dimensional processor
//! array and not a lower-dimensional one. Floating-point rank is unacceptable
//! here — the matrices are tiny but the verdict must be exact.

use crate::mat::IMat;

/// The exact rank of an integer matrix.
///
/// Runs fraction-free Gaussian elimination with `i128` intermediates;
/// panics on (absurdly unlikely for this domain) `i128` overflow.
pub fn rank(m: &IMat) -> usize {
    let (rows, cols) = (m.rows(), m.cols());
    if rows == 0 || cols == 0 {
        return 0;
    }
    let mut a: Vec<i128> = m.entries().map(|&x| x as i128).collect();
    let idx = |i: usize, j: usize| i * cols + j;
    let mut r = 0usize; // current pivot row
    let mut prev = 1i128;
    for c in 0..cols {
        // Find pivot in column c at or below row r.
        let Some(p) = (r..rows).find(|&i| a[idx(i, c)] != 0) else {
            continue;
        };
        if p != r {
            for j in 0..cols {
                a.swap(idx(r, j), idx(p, j));
            }
        }
        let pivot = a[idx(r, c)];
        for i in r + 1..rows {
            for j in c + 1..cols {
                let num = a[idx(i, j)]
                    .checked_mul(pivot)
                    .and_then(|x| {
                        x.checked_sub(
                            a[idx(i, c)]
                                .checked_mul(a[idx(r, j)])
                                .expect("rank overflow"),
                        )
                    })
                    .expect("rank overflow");
                a[idx(i, j)] = num / prev;
            }
            a[idx(i, c)] = 0;
        }
        prev = pivot;
        r += 1;
        if r == rows {
            break;
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rank_of_identity_and_zero() {
        assert_eq!(rank(&IMat::identity(4)), 4);
        assert_eq!(rank(&IMat::zeros(3, 5)), 0);
        assert_eq!(rank(&IMat::zeros(0, 0)), 0);
    }

    #[test]
    fn rank_of_rank_deficient() {
        let m = IMat::from_rows(&[&[1, 2, 3], &[2, 4, 6], &[0, 0, 1]]);
        assert_eq!(rank(&m), 2);
        let m = IMat::from_rows(&[&[1, 2], &[3, 4], &[5, 6]]);
        assert_eq!(rank(&m), 2);
    }

    #[test]
    fn rank_needs_column_skips() {
        // First column all zero: elimination must move on without losing rows.
        let m = IMat::from_rows(&[&[0, 1, 0], &[0, 0, 2]]);
        assert_eq!(rank(&m), 2);
    }

    #[test]
    fn rank_of_paper_mapping_matrices() {
        // T of eq. (4.2), p = 3: rank must be k = 3 (condition 4).
        let t = IMat::from_rows(&[&[3, 0, 0, 1, 0], &[0, 3, 0, 0, 1], &[1, 1, 1, 2, 1]]);
        assert_eq!(rank(&t), 3);
        // T' of eq. (4.6), p = 3.
        let t2 = IMat::from_rows(&[&[3, 0, 0, 1, 0], &[0, 3, 0, 0, 1], &[3, 3, 1, 2, 1]]);
        assert_eq!(rank(&t2), 3);
    }

    #[test]
    fn rank_rows_exhausted_early() {
        let m = IMat::from_rows(&[&[1, 0, 0, 0]]);
        assert_eq!(rank(&m), 1);
    }

    proptest! {
        #[test]
        fn prop_rank_bounded(rows in 1usize..5, cols in 1usize..5,
                             seed in proptest::collection::vec(-20i64..20, 25)) {
            let data: Vec<i64> = seed.into_iter().take(rows * cols).collect();
            prop_assume!(data.len() == rows * cols);
            let m = IMat::from_flat(rows, cols, data);
            let r = rank(&m);
            prop_assert!(r <= rows.min(cols));
            // rank(M) == rank(Mᵀ)
            prop_assert_eq!(r, rank(&m.transpose()));
        }

        #[test]
        fn prop_outer_product_has_rank_at_most_one(
            u in proptest::collection::vec(-10i64..10, 3),
            v in proptest::collection::vec(-10i64..10, 4),
        ) {
            let mut m = IMat::zeros(3, 4);
            for i in 0..3 {
                for j in 0..4 {
                    m[(i, j)] = u[i] * v[j];
                }
            }
            prop_assert!(rank(&m) <= 1);
        }
    }
}
