#![warn(missing_docs)]

//! # bitlevel-linalg
//!
//! Exact integer linear algebra for the bit-level dependence-analysis and
//! architecture-design toolkit.
//!
//! The mapping method of Shang & Wah (Definition 4.1) and the general
//! dependence-analysis baselines both reduce to small exact integer
//! computations:
//!
//! * integer **rank** (condition 4 of Definition 4.1) — [`rank`],
//! * **coprimality** of the entries of a mapping matrix (condition 5) —
//!   [`gcd`],
//! * **injectivity** of `τ(j̄) = Tj̄` on the index set (condition 3), which
//!   needs an integer **nullspace** basis — [`nullspace`],
//! * expressing `SD = PK` as small **linear Diophantine systems** (condition 2)
//!   — [`diophantine`],
//! * detecting cross-iteration dependences of the expanded bit-level code,
//!   which is a linear Diophantine system intersected with the index set —
//!   [`diophantine`] again, driven from `bitlevel-depanal`.
//!
//! Everything is exact: entries are `i64`, elimination uses fraction-free
//! (Bareiss) pivoting with `i128` intermediates, and the Hermite/Smith normal
//! forms come with the unimodular transforms that witness them.
//!
//! This crate has no dependencies on the rest of the workspace and is usable
//! on its own.

pub mod diophantine;
pub mod gcd;
pub mod hnf;
pub mod mat;
pub mod nullspace;
pub mod rank;
pub mod smith;
pub mod vec;

pub use diophantine::{solve_system, DiophantineSolution};
pub use gcd::{extended_gcd, gcd, gcd_all, lcm};
pub use hnf::{column_hermite_form, HermiteForm};
pub use mat::IMat;
pub use nullspace::integer_nullspace;
pub use rank::rank;
pub use smith::{smith_normal_form, SmithForm};
pub use vec::IVec;

/// Errors produced by exact integer linear algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix/vector dimensions do not agree for the requested operation.
    DimensionMismatch {
        /// What was being attempted.
        context: &'static str,
        /// Dimensions seen, formatted by the caller.
        detail: String,
    },
    /// An intermediate value exceeded the `i64` range.
    Overflow(&'static str),
    /// The requested decomposition needs a non-empty matrix.
    Empty(&'static str),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { context, detail } => {
                write!(f, "dimension mismatch in {context}: {detail}")
            }
            LinalgError::Overflow(ctx) => write!(f, "integer overflow in {ctx}"),
            LinalgError::Empty(ctx) => write!(f, "empty matrix in {ctx}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = LinalgError::DimensionMismatch {
            context: "matmul",
            detail: "3x2 * 4x1".into(),
        };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("3x2"));
        let e = LinalgError::Overflow("bareiss");
        assert!(e.to_string().contains("overflow"));
    }
}
