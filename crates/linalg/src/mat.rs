//! Exact integer matrices.
//!
//! Dependence matrices `D`, mapping matrices `T = [S; Π]`, interconnection
//! primitive matrices `P`, and utilisation matrices `K` (Definition 4.1) are
//! all small dense integer matrices; [`IMat`] is their common representation,
//! stored row-major.

use crate::vec::IVec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major, exact integer matrix.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IMat {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IMat {
    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    /// Panics if rows are ragged.
    pub fn from_rows(rows: &[&[i64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in IMat::from_rows");
            data.extend_from_slice(row);
        }
        IMat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<i64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer size mismatch");
        IMat { rows, cols, data }
    }

    /// Builds a matrix whose columns are the given vectors (e.g. a dependence
    /// matrix from dependence vectors).
    ///
    /// # Panics
    /// Panics if the vectors have differing dimensions.
    pub fn from_columns(cols: &[IVec]) -> Self {
        if cols.is_empty() {
            return IMat {
                rows: 0,
                cols: 0,
                data: vec![],
            };
        }
        let r = cols[0].dim();
        for c in cols {
            assert_eq!(c.dim(), r, "column dimension mismatch in from_columns");
        }
        let mut m = IMat::zeros(r, cols.len());
        for (j, col) in cols.iter().enumerate() {
            for i in 0..r {
                m[(i, j)] = col[i];
            }
        }
        m
    }

    /// The `r × c` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        IMat {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = IMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True if the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[i64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` as a fresh vector.
    pub fn col(&self, j: usize) -> IVec {
        IVec((0..self.rows).map(|i| self[(i, j)]).collect())
    }

    /// Iterator over the columns as [`IVec`]s.
    pub fn columns(&self) -> impl Iterator<Item = IVec> + '_ {
        (0..self.cols).map(|j| self.col(j))
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> IMat {
        let mut t = IMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch or `i64` overflow (the matrices in
    /// this project are tiny; overflow indicates corrupted input).
    pub fn matmul(&self, rhs: &IMat) -> IMat {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul inner dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = IMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    let prod = a.checked_mul(rhs[(k, j)]).expect("matmul overflow");
                    out[(i, j)] = out[(i, j)].checked_add(prod).expect("matmul overflow");
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v` (v a column vector).
    pub fn matvec(&self, v: &IVec) -> IVec {
        assert_eq!(
            self.cols,
            v.dim(),
            "matvec dimension mismatch: {}x{} * {}",
            self.rows,
            self.cols,
            v.dim()
        );
        IVec(
            (0..self.rows)
                .map(|i| {
                    self.row(i)
                        .iter()
                        .zip(v.iter())
                        .map(|(&a, &b)| a.checked_mul(b).expect("matvec overflow"))
                        .fold(0i64, |acc, x| acc.checked_add(x).expect("matvec overflow"))
                })
                .collect(),
        )
    }

    /// Stacks `self` on top of `other` (vertical concatenation), e.g.
    /// `T = [S; Π]`.
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn vstack(&self, other: &IMat) -> IMat {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        IMat {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Places `self` to the left of `other` (horizontal concatenation).
    ///
    /// # Panics
    /// Panics if row counts differ.
    pub fn hstack(&self, other: &IMat) -> IMat {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let mut out = IMat::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.data[i * out.cols..i * out.cols + self.cols].copy_from_slice(self.row(i));
            out.data[i * out.cols + self.cols..(i + 1) * out.cols].copy_from_slice(other.row(i));
        }
        out
    }

    /// Block-diagonal composition `diag(self, other)` — used to assemble the
    /// bit-level dependence matrix of Theorem 3.1 from `D_w` and `D_as`.
    pub fn block_diag(&self, other: &IMat) -> IMat {
        let mut out = IMat::zeros(self.rows + other.rows, self.cols + other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(i, j)] = self[(i, j)];
            }
        }
        for i in 0..other.rows {
            for j in 0..other.cols {
                out[(self.rows + i, self.cols + j)] = other[(i, j)];
            }
        }
        out
    }

    /// The submatrix selecting the given rows (in order, repeats allowed).
    pub fn select_rows(&self, rows: &[usize]) -> IMat {
        let mut out = IMat::zeros(rows.len(), self.cols);
        for (oi, &i) in rows.iter().enumerate() {
            for j in 0..self.cols {
                out[(oi, j)] = self[(i, j)];
            }
        }
        out
    }

    /// The submatrix selecting the given columns (in order, repeats allowed).
    pub fn select_cols(&self, cols: &[usize]) -> IMat {
        let mut out = IMat::zeros(self.rows, cols.len());
        for (oj, &j) in cols.iter().enumerate() {
            for i in 0..self.rows {
                out[(i, oj)] = self[(i, j)];
            }
        }
        out
    }

    /// Appends a column to the right.
    pub fn push_col(&mut self, col: &IVec) {
        assert_eq!(col.dim(), self.rows, "push_col dimension mismatch");
        *self = self.hstack(&IMat::from_columns(std::slice::from_ref(col)));
    }

    /// Determinant by fraction-free (Bareiss) elimination; exact.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn det(&self) -> i128 {
        assert_eq!(self.rows, self.cols, "determinant of non-square matrix");
        let n = self.rows;
        if n == 0 {
            return 1;
        }
        let mut a: Vec<i128> = self.data.iter().map(|&x| x as i128).collect();
        let idx = |i: usize, j: usize| i * n + j;
        let mut sign = 1i128;
        let mut prev = 1i128;
        for k in 0..n - 1 {
            if a[idx(k, k)] == 0 {
                // Find a pivot below.
                let Some(p) = (k + 1..n).find(|&i| a[idx(i, k)] != 0) else {
                    return 0;
                };
                for j in 0..n {
                    a.swap(idx(k, j), idx(p, j));
                }
                sign = -sign;
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    let num = a[idx(i, j)]
                        .checked_mul(a[idx(k, k)])
                        .and_then(|x| {
                            x.checked_sub(
                                a[idx(i, k)]
                                    .checked_mul(a[idx(k, j)])
                                    .expect("det overflow"),
                            )
                        })
                        .expect("det overflow");
                    a[idx(i, j)] = num / prev;
                }
                a[idx(i, k)] = 0;
            }
            prev = a[idx(k, k)];
        }
        sign * a[idx(n - 1, n - 1)]
    }

    /// Entry-wise map.
    pub fn map(&self, f: impl Fn(i64) -> i64) -> IMat {
        IMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Iterator over all entries (row-major).
    pub fn entries(&self) -> std::slice::Iter<'_, i64> {
        self.data.iter()
    }
}

impl std::ops::Index<(usize, usize)> for IMat {
    type Output = i64;
    fn index(&self, (i, j): (usize, usize)) -> &i64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for IMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut i64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column-aligned display, matching how the paper prints dependence
        // matrices.
        let mut widths = vec![0usize; self.cols];
        for i in 0..self.rows {
            for j in 0..self.cols {
                widths[j] = widths[j].max(self[(i, j)].to_string().len());
            }
        }
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>width$}", self[(i, j)], width = widths[j])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2() -> IMat {
        IMat::from_rows(&[&[1, 2], &[3, 4]])
    }

    #[test]
    fn construction_and_indexing() {
        let m = m2();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 1)], 2);
        assert_eq!(m.row(1), &[3, 4]);
        assert_eq!(m.col(0), IVec::from([1, 3]));
    }

    #[test]
    fn from_columns_matches_paper_dependence_matrix_layout() {
        // D of eq. (2.4): columns d̄1=[1,0,0], d̄2=[0,1,0], d̄3=[0,0,1].
        let d = IMat::from_columns(&[
            IVec::from([1, 0, 0]),
            IVec::from([0, 1, 0]),
            IVec::from([0, 0, 1]),
        ]);
        assert_eq!(d, IMat::identity(3));
    }

    #[test]
    fn matmul_and_matvec() {
        let m = m2();
        let id = IMat::identity(2);
        assert_eq!(m.matmul(&id), m);
        assert_eq!(id.matmul(&m), m);
        let prod = m.matmul(&m);
        assert_eq!(prod, IMat::from_rows(&[&[7, 10], &[15, 22]]));
        assert_eq!(m.matvec(&IVec::from([1, 1])), IVec::from([3, 7]));
    }

    #[test]
    fn transpose_involution() {
        let m = IMat::from_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().rows(), 3);
    }

    #[test]
    fn stacking() {
        let s = IMat::from_rows(&[&[1, 0], &[0, 1]]);
        let pi = IMat::from_rows(&[&[1, 1]]);
        let t = s.vstack(&pi);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.row(2), &[1, 1]);
        let h = s.hstack(&s);
        assert_eq!(h.cols(), 4);
        assert_eq!(h.row(0), &[1, 0, 1, 0]);
    }

    #[test]
    fn block_diag_assembles_theorem_3_1_shape() {
        // [D_w 0; 0 D_as] for matmul: D_w = I3, D_as = [[1,0,1],[0,1,-1]].
        let dw = IMat::identity(3);
        let das = IMat::from_rows(&[&[1, 0, 1], &[0, 1, -1]]);
        let d = dw.block_diag(&das);
        assert_eq!(d.rows(), 5);
        assert_eq!(d.cols(), 6);
        assert_eq!(d[(0, 0)], 1);
        assert_eq!(d[(3, 3)], 1);
        assert_eq!(d[(4, 5)], -1);
        assert_eq!(d[(0, 3)], 0);
        assert_eq!(d[(3, 0)], 0);
    }

    #[test]
    fn determinant() {
        assert_eq!(m2().det(), -2);
        assert_eq!(IMat::identity(4).det(), 1);
        let singular = IMat::from_rows(&[&[1, 2], &[2, 4]]);
        assert_eq!(singular.det(), 0);
        // Needs a row swap to find a pivot.
        let swap = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        assert_eq!(swap.det(), -1);
        // 3x3 with known determinant.
        let m = IMat::from_rows(&[&[2, 0, 1], &[1, 3, 2], &[1, 1, 1]]);
        assert_eq!(m.det(), 2 + (1 - 3));
    }

    #[test]
    fn select_rows_and_cols() {
        let m = IMat::from_rows(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]]);
        assert_eq!(
            m.select_rows(&[2, 0]),
            IMat::from_rows(&[&[7, 8, 9], &[1, 2, 3]])
        );
        assert_eq!(m.select_cols(&[1]), IMat::from_rows(&[&[2], &[5], &[8]]));
    }

    #[test]
    fn display_is_aligned() {
        let m = IMat::from_rows(&[&[1, -10], &[100, 2]]);
        let s = m.to_string();
        assert!(s.contains("-10"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = IMat::identity(2);
        let b = IMat::identity(3);
        let _ = a.matmul(&b);
    }
}
