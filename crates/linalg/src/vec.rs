//! Exact integer column vectors.
//!
//! In the paper's notation, index points `j̄`, dependence vectors `d̄` and the
//! loop bounds `l̄`, `ū` are all integer column vectors; [`IVec`] is the shared
//! representation. Row vectors (schedules `Π`) are represented as rows of an
//! [`crate::IMat`] or as `&[i64]` slices where a standalone row is needed.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// An exact integer column vector.
///
/// `IVec` is a thin wrapper over `Vec<i64>` with element-wise arithmetic,
/// dot products, and the component-wise partial order `v̄ ≥ ū` used by the
/// paper ("every component of v̄ is greater than or equal to the corresponding
/// component of ū").
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IVec(pub Vec<i64>);

impl IVec {
    /// Creates a vector from a slice.
    pub fn from_slice(v: &[i64]) -> Self {
        IVec(v.to_vec())
    }

    /// The zero vector `0̄` of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        IVec(vec![0; n])
    }

    /// The all-ones vector of dimension `n`.
    pub fn ones(n: usize) -> Self {
        IVec(vec![1; n])
    }

    /// The `i`-th standard basis vector of dimension `n` (`e_i[i] = 1`).
    ///
    /// # Panics
    /// Panics if `i >= n`.
    pub fn unit(n: usize, i: usize) -> Self {
        assert!(i < n, "unit index {i} out of range for dimension {n}");
        let mut v = vec![0; n];
        v[i] = 1;
        IVec(v)
    }

    /// Dimension of the vector.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// True if every component is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&x| x == 0)
    }

    /// Dot product `⟨self, other⟩`.
    ///
    /// # Panics
    /// Panics on dimension mismatch (a programming error in this codebase,
    /// where all vectors of an algorithm share the algorithm dimension).
    pub fn dot(&self, other: &IVec) -> i64 {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dot product dimension mismatch: {} vs {}",
            self.dim(),
            other.dim()
        );
        self.0
            .iter()
            .zip(&other.0)
            .map(|(&a, &b)| a.checked_mul(b).expect("dot product overflow"))
            .fold(0i64, |acc, x| {
                acc.checked_add(x).expect("dot product overflow")
            })
    }

    /// Dot product against a plain slice (e.g. a schedule row `Π`).
    pub fn dot_slice(&self, row: &[i64]) -> i64 {
        assert_eq!(self.dim(), row.len(), "dot_slice dimension mismatch");
        self.0
            .iter()
            .zip(row)
            .map(|(&a, &b)| a.checked_mul(b).expect("dot product overflow"))
            .fold(0i64, |acc, x| {
                acc.checked_add(x).expect("dot product overflow")
            })
    }

    /// Component-wise `≥` — the paper's `v̄ ≥ ū`.
    pub fn ge_componentwise(&self, other: &IVec) -> bool {
        self.dim() == other.dim() && self.0.iter().zip(&other.0).all(|(a, b)| a >= b)
    }

    /// Component-wise `≤`.
    pub fn le_componentwise(&self, other: &IVec) -> bool {
        other.ge_componentwise(self)
    }

    /// Concatenates two vectors, as in building the compound index point
    /// `q̄ = [j̄ᵀ, ī ᵀ]ᵀ` of eq. (3.10).
    pub fn concat(&self, other: &IVec) -> IVec {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        IVec(v)
    }

    /// Splits the vector after the first `n` components: `(j̄, ī)` from `q̄`.
    ///
    /// # Panics
    /// Panics if `n > dim`.
    pub fn split_at(&self, n: usize) -> (IVec, IVec) {
        assert!(
            n <= self.dim(),
            "split index {n} beyond dimension {}",
            self.dim()
        );
        (IVec(self.0[..n].to_vec()), IVec(self.0[n..].to_vec()))
    }

    /// L1 norm `Σ |v_i|`.
    pub fn l1_norm(&self) -> i64 {
        self.0.iter().map(|x| x.abs()).sum()
    }

    /// L∞ norm `max |v_i|`.
    pub fn linf_norm(&self) -> i64 {
        self.0.iter().map(|x| x.abs()).max().unwrap_or(0)
    }

    /// Iterator over components.
    pub fn iter(&self) -> std::slice::Iter<'_, i64> {
        self.0.iter()
    }

    /// The underlying slice.
    pub fn as_slice(&self) -> &[i64] {
        &self.0
    }

    /// Scales every component by `k`.
    pub fn scaled(&self, k: i64) -> IVec {
        IVec(
            self.0
                .iter()
                .map(|&x| x.checked_mul(k).expect("scale overflow"))
                .collect(),
        )
    }
}

impl fmt::Display for IVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, "]")
    }
}

impl Index<usize> for IVec {
    type Output = i64;
    fn index(&self, i: usize) -> &i64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for IVec {
    fn index_mut(&mut self, i: usize) -> &mut i64 {
        &mut self.0[i]
    }
}

impl From<Vec<i64>> for IVec {
    fn from(v: Vec<i64>) -> Self {
        IVec(v)
    }
}

impl From<&[i64]> for IVec {
    fn from(v: &[i64]) -> Self {
        IVec(v.to_vec())
    }
}

impl<const N: usize> From<[i64; N]> for IVec {
    fn from(v: [i64; N]) -> Self {
        IVec(v.to_vec())
    }
}

impl Add for &IVec {
    type Output = IVec;
    fn add(self, rhs: &IVec) -> IVec {
        assert_eq!(self.dim(), rhs.dim(), "vector add dimension mismatch");
        IVec(
            self.0
                .iter()
                .zip(&rhs.0)
                .map(|(a, b)| a.checked_add(*b).expect("vector add overflow"))
                .collect(),
        )
    }
}

impl Sub for &IVec {
    type Output = IVec;
    fn sub(self, rhs: &IVec) -> IVec {
        assert_eq!(self.dim(), rhs.dim(), "vector sub dimension mismatch");
        IVec(
            self.0
                .iter()
                .zip(&rhs.0)
                .map(|(a, b)| a.checked_sub(*b).expect("vector sub overflow"))
                .collect(),
        )
    }
}

impl Neg for &IVec {
    type Output = IVec;
    fn neg(self) -> IVec {
        IVec(self.0.iter().map(|x| -x).collect())
    }
}

impl Mul<i64> for &IVec {
    type Output = IVec;
    fn mul(self, k: i64) -> IVec {
        self.scaled(k)
    }
}

impl IntoIterator for IVec {
    type Item = i64;
    type IntoIter = std::vec::IntoIter<i64>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a IVec {
    type Item = &'a i64;
    type IntoIter = std::slice::Iter<'a, i64>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_basic_queries() {
        let v = IVec::from([1, -2, 3]);
        assert_eq!(v.dim(), 3);
        assert!(!v.is_zero());
        assert!(IVec::zeros(4).is_zero());
        assert_eq!(IVec::ones(3), IVec::from([1, 1, 1]));
        assert_eq!(IVec::unit(3, 1), IVec::from([0, 1, 0]));
    }

    #[test]
    #[should_panic(expected = "unit index")]
    fn unit_out_of_range_panics() {
        let _ = IVec::unit(2, 2);
    }

    #[test]
    fn arithmetic() {
        let a = IVec::from([1, 2, 3]);
        let b = IVec::from([4, -5, 6]);
        assert_eq!(&a + &b, IVec::from([5, -3, 9]));
        assert_eq!(&a - &b, IVec::from([-3, 7, -3]));
        assert_eq!(-&a, IVec::from([-1, -2, -3]));
        assert_eq!(&a * 3, IVec::from([3, 6, 9]));
        assert_eq!(a.dot(&b), 4 - 10 + 18);
        assert_eq!(a.dot_slice(&[1, 1, 1]), 6);
    }

    #[test]
    fn componentwise_order_matches_paper_definition() {
        let a = IVec::from([2, 3]);
        let b = IVec::from([1, 3]);
        assert!(a.ge_componentwise(&b));
        assert!(!b.ge_componentwise(&a));
        assert!(b.le_componentwise(&a));
        // Incomparable pair: neither ≥ holds.
        let c = IVec::from([0, 5]);
        assert!(!a.ge_componentwise(&c));
        assert!(!c.ge_componentwise(&a));
    }

    #[test]
    fn concat_and_split_roundtrip_eq_3_10() {
        // q̄ = [j̄ᵀ, īᵀ]ᵀ with j̄ 3-dimensional and ī 2-dimensional.
        let j = IVec::from([1, 2, 3]);
        let i = IVec::from([4, 5]);
        let q = j.concat(&i);
        assert_eq!(q, IVec::from([1, 2, 3, 4, 5]));
        let (j2, i2) = q.split_at(3);
        assert_eq!(j2, j);
        assert_eq!(i2, i);
    }

    #[test]
    fn norms() {
        let v = IVec::from([3, -4, 0]);
        assert_eq!(v.l1_norm(), 7);
        assert_eq!(v.linf_norm(), 4);
        assert_eq!(IVec::zeros(0).linf_norm(), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(IVec::from([1, -2]).to_string(), "[1, -2]");
    }
}
